//===- tests/store_test.cpp - Compressed + tiered language store --------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// DESIGN.md Sec. 11 invariants:
///
///  * codec round trips: decode(encode(row)) is bit-identical for
///    every width and sparsity class (fuzzed, including the all-zero,
///    all-one and single-word extremes), encodings are deterministic,
///    and malformed bytes are rejected fail-closed (0 consumed, row
///    zeroed);
///  * seal equivalence: sealing at every level boundary never changes
///    a bit - synthesis results, costs and candidate counts equal the
///    raw store's on every backend and shard count, including through
///    the disk tier under a tiny pinned budget;
///  * snapshots: serialize -> restore -> serialize is byte-identical
///    for compressed stores (spilled chunks page in at save), mode
///    mismatches and truncation are rejected;
///  * park/resume: a session over a compressed store snapshots and
///    resumes to the raw run's exact answer.
///
//===----------------------------------------------------------------------===//

#include "core/ShardedStore.h"
#include "core/Snapshot.h"
#include "engine/BackendRegistry.h"
#include "engine/SearchDriver.h"
#include "engine/Session.h"
#include "lang/RowCodec.h"
#include "support/Bits.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace paresy;
using namespace paresy::engine;

namespace {

const char *const Backends[] = {"cpu", "cpu-parallel", "gpusim"};
const unsigned ShardCounts[] = {1, 2, 3, 7};
const size_t RowWidths[] = {1, 2, 3, 4, 8, 13};

Alphabet sigma01() { return Alphabet::of("01"); }

Spec introSpec() {
  return Spec({"10", "101", "100", "1010", "1011", "1000", "1001"},
              {"", "0", "1", "00", "11", "010"});
}

std::vector<Spec> corpus() {
  return {introSpec(),
          Spec({"1", "011", "1011", "11011"}, {"", "10", "101", "0011"}),
          Spec({"", "0", "00"}, {"1", "01", "10"})};
}

/// A \p Words-word row of sparsity class \p Class (cycled): all-zero,
/// all-one, single nonzero word, single set bit, a few scattered bits,
/// dense random. Together the classes hit every codec arm.
std::vector<uint64_t> classRow(size_t Words, unsigned Class, uint64_t Seed) {
  std::vector<uint64_t> Row(Words, 0);
  switch (Class % 6) {
  case 0: // All-zero (the empty language).
    break;
  case 1: // All-one.
    Row.assign(Words, ~uint64_t(0));
    break;
  case 2: // Single nonzero word.
    Row[hashMix64(Seed) % Words] = hashMix64(Seed + 1) | 1;
    break;
  case 3: { // Single set bit.
    size_t Bit = hashMix64(Seed) % (Words * 64);
    Row[Bit / 64] = uint64_t(1) << (Bit % 64);
    break;
  }
  case 4: { // A few scattered bits.
    for (uint64_t I = 0; I != 5; ++I) {
      size_t Bit = hashMix64(Seed * 31 + I) % (Words * 64);
      Row[Bit / 64] |= uint64_t(1) << (Bit % 64);
    }
    break;
  }
  case 5: // Dense random.
    for (size_t W = 0; W != Words; ++W)
      Row[W] = hashMix64(Seed * 131 + W);
    break;
  }
  return Row;
}

/// Everything two result-equivalent runs must agree on, minus the
/// fields the storage mode legitimately changes (MemoryBytes shrinks
/// under compression).
void expectSameAnswer(const SynthResult &Ref, const SynthResult &R) {
  ASSERT_EQ(Ref.Status, R.Status) << statusName(R.Status);
  EXPECT_EQ(Ref.Regex, R.Regex);
  EXPECT_EQ(Ref.Cost, R.Cost);
  EXPECT_EQ(Ref.Stats.CandidatesGenerated, R.Stats.CandidatesGenerated);
  EXPECT_EQ(Ref.Stats.UniqueLanguages, R.Stats.UniqueLanguages);
  EXPECT_EQ(Ref.Stats.CacheEntries, R.Stats.CacheEntries);
  EXPECT_EQ(Ref.Stats.LastCompletedCost, R.Stats.LastCompletedCost);
}

/// A tiered store populated with \p Rows classRow rows, sealed at two
/// interior boundaries plus the end, with valid provenance chains and
/// level ranges (the compressed analogue of session_test's
/// populatedStore).
std::unique_ptr<ShardedStore>
populatedTieredStore(unsigned Shards, uint32_t Rows,
                     const StoreTierConfig &Tier) {
  auto Store =
      std::make_unique<ShardedStore>(2, Shards, Rows + 40, Tier);
  for (uint32_t I = 0; I != Rows; ++I) {
    Provenance P;
    if (I < 2) {
      P.Kind = CsOp::Literal;
      P.Symbol = char('0' + I);
    } else if (I % 3 == 0) {
      P.Kind = CsOp::Star;
      P.Lhs = I / 2;
    } else {
      P.Kind = I % 3 == 1 ? CsOp::Concat : CsOp::Union;
      P.Lhs = I / 2;
      P.Rhs = I / 3;
    }
    Store->append(classRow(2, I, I * 977 + 5).data(), P);
    if (I + 1 == Rows / 3 || I + 1 == 2 * Rows / 3)
      Store->sealLevel();
  }
  Store->setLevel(1, 0, Rows / 2);
  Store->setLevel(3, Rows / 2, Rows);
  Store->sealLevel();
  return Store;
}

std::string storeBytes(const ShardedStore &Store) {
  SnapshotWriter W;
  saveShardedStore(W, Store);
  return W.take();
}

/// Unique spill-path base per test point (segments append ".shardN").
std::string spillBase(const std::string &Tag) {
  return ::testing::TempDir() + "paresy_store_test_" + Tag;
}

} // namespace

//===----------------------------------------------------------------------===//
// Row codec
//===----------------------------------------------------------------------===//

TEST(RowCodec, RoundTripsEveryWidthAndSparsityClassBitExactly) {
  for (size_t Words : RowWidths) {
    for (unsigned Class = 0; Class != 6; ++Class) {
      for (uint64_t Seed = 0; Seed != 25; ++Seed) {
        SCOPED_TRACE("words " + std::to_string(Words) + ", class " +
                     std::to_string(Class) + ", seed " +
                     std::to_string(Seed));
        std::vector<uint64_t> Row = classRow(Words, Class, Seed);
        std::string Bytes;
        RowCodec Used = encodeRow(Row.data(), Words, Bytes);
        ASSERT_FALSE(Bytes.empty());
        EXPECT_LE(Bytes.size(), encodedRowBound(Words));
        EXPECT_EQ(uint8_t(Bytes[0]), uint8_t(Used));

        // Decode over a poisoned buffer: every word must be written.
        std::vector<uint64_t> Decoded(Words, 0xaaaaaaaaaaaaaaaaULL);
        size_t Consumed =
            decodeRow(Bytes.data(), Bytes.size(), Decoded.data(), Words);
        ASSERT_EQ(Consumed, Bytes.size());
        EXPECT_TRUE(equalWords(Decoded.data(), Row.data(), Words));

        // With trailing garbage the decoder consumes exactly its row.
        std::string Padded = Bytes + "garbage";
        EXPECT_EQ(decodeRow(Padded.data(), Padded.size(), Decoded.data(),
                            Words),
                  Bytes.size());

        // Deterministic: equal rows, equal bytes.
        std::string Again;
        EXPECT_EQ(encodeRow(Row.data(), Words, Again), Used);
        EXPECT_EQ(Again, Bytes);
      }
    }
  }
}

TEST(RowCodec, ExtremesPickTheObviousCodec) {
  std::vector<uint64_t> Zero(4, 0);
  std::string Bytes;
  EXPECT_EQ(encodeRow(Zero.data(), 4, Bytes), RowCodec::AllZero);
  EXPECT_EQ(Bytes.size(), 1u); // Tag only.

  std::vector<uint64_t> OneBit(4, 0);
  OneBit[2] = uint64_t(1) << 17;
  Bytes.clear();
  EXPECT_EQ(encodeRow(OneBit.data(), 4, Bytes), RowCodec::SparseBits);
  EXPECT_LT(Bytes.size(), encodedRowBound(4));

  std::vector<uint64_t> Dense(4);
  for (size_t W = 0; W != 4; ++W)
    Dense[W] = hashMix64(W + 7) | 0x8888888888888888ULL;
  Bytes.clear();
  EXPECT_EQ(encodeRow(Dense.data(), 4, Bytes), RowCodec::Raw);
  EXPECT_EQ(Bytes.size(), encodedRowBound(4));
}

TEST(RowCodec, FailsClosedOnMalformedBytes) {
  for (size_t Words : RowWidths) {
    for (unsigned Class = 0; Class != 6; ++Class) {
      std::string Bytes;
      std::vector<uint64_t> Row = classRow(Words, Class, Class + 3);
      encodeRow(Row.data(), Words, Bytes);

      // Truncation at every prefix must be rejected, with the output
      // row zeroed rather than partially written.
      for (size_t Cut = 0; Cut != Bytes.size(); ++Cut) {
        std::vector<uint64_t> Out(Words, 0xbbbbbbbbbbbbbbbbULL);
        EXPECT_EQ(decodeRow(Bytes.data(), Cut, Out.data(), Words), 0u)
            << "words " << Words << " class " << Class << " cut " << Cut;
        for (size_t W = 0; W != Words; ++W)
          EXPECT_EQ(Out[W], 0u);
      }
    }
  }

  // An unknown tag byte is rejected outright.
  std::vector<uint64_t> Out(2, 0xccccccccccccccccULL);
  char Bad[] = {0x7f, 0, 0, 0};
  EXPECT_EQ(decodeRow(Bad, sizeof(Bad), Out.data(), 2), 0u);
  EXPECT_EQ(Out[0], 0u);
  EXPECT_EQ(Out[1], 0u);
}

//===----------------------------------------------------------------------===//
// Compressed cache vs the raw arena
//===----------------------------------------------------------------------===//

TEST(CompressedCache, SealedRowsMatchRawAcrossLevelBoundaries) {
  for (size_t Words : {size_t(1), size_t(2), size_t(8)}) {
    SCOPED_TRACE(Words);
    LanguageCache Raw(Words, 512);
    StoreTierConfig Tier;
    Tier.Compress = true;
    LanguageCache Comp(Words, 512, Tier);

    const uint32_t N = 300;
    for (uint32_t I = 0; I != N; ++I) {
      std::vector<uint64_t> Row = classRow(Words, I, I * 977 + Words);
      Provenance P{CsOp::Literal, char('a' + I % 7), I / 2, I / 3};
      Raw.append(Row.data(), P);
      Comp.append(Row.data(), P);
      if (I % 37 == 36) // Seal at many interior "level boundaries".
        Comp.sealLevel();
    }
    Comp.sealLevel();
    ASSERT_EQ(Comp.size(), Raw.size());
    EXPECT_EQ(Comp.sealedRows(), N);
    EXPECT_EQ(Comp.windowRows(), 0u);
    uint64_t CodecSum = 0;
    for (unsigned C = 0; C != NumRowCodecs; ++C)
      CodecSum += Comp.codecRows(C);
    EXPECT_EQ(CodecSum, N);
    EXPECT_EQ(Comp.compressedBytes(), Comp.hotBytes());
    EXPECT_EQ(Comp.spilledBytes(), 0u);

    // Forward, backward and strided reads (the backward pass defeats
    // the scratch ring, the strided pass mixes chunks).
    for (uint32_t I = 0; I != N; ++I)
      EXPECT_TRUE(equalWords(Comp.cs(I), Raw.cs(I), Words)) << I;
    for (uint32_t I = N; I-- > 0;) {
      EXPECT_TRUE(equalWords(Comp.cs(I), Raw.cs(I), Words)) << I;
      EXPECT_EQ(Comp.rowHash(I), Raw.rowHash(I)) << I;
      EXPECT_EQ(Comp.provenance(I).Symbol, Raw.provenance(I).Symbol) << I;
    }
    for (uint32_t I = 0; I < N; I += 41)
      EXPECT_TRUE(equalWords(Comp.cs(I), Raw.cs(I), Words)) << I;
  }
}

TEST(CompressedCache, SparseRowsShrinkBelowTheLogicalFootprint) {
  // 8-word rows dominated by the sparse classes: sealed bytes must be
  // well below the padded-stride footprint the raw arena would pay.
  StoreTierConfig Tier;
  Tier.Compress = true;
  LanguageCache Comp(8, 512, Tier);
  const uint32_t N = 300;
  for (uint32_t I = 0; I != N; ++I) {
    std::vector<uint64_t> Row = classRow(8, I % 5, I); // No dense class.
    Comp.append(Row.data(), Provenance{});
  }
  Comp.sealLevel();
  uint64_t Logical =
      uint64_t(N) * LanguageCache::strideForWords(8) * sizeof(uint64_t);
  EXPECT_LT(Comp.compressedBytes(), Logical / 2);
}

TEST(CompressedCache, ByteBudgetDrivesFullnessDeterministically) {
  StoreTierConfig Tier;
  Tier.Compress = true;
  Tier.ByteBudget = 16 << 10;
  auto Fill = [&](LanguageCache &C, uint32_t Limit) {
    uint32_t I = 0;
    for (; I != Limit && !C.full(); ++I) {
      std::vector<uint64_t> Row = classRow(2, I, I * 7 + 1);
      C.append(Row.data(), Provenance{});
      if (I % 16 == 15)
        C.sealLevel();
    }
    return I;
  };
  LanguageCache A(2, 1u << 20, Tier);
  uint32_t N = Fill(A, 1u << 20);
  EXPECT_TRUE(A.full());
  EXPECT_GT(N, 0u);
  EXPECT_GE(A.chargedBytes(), Tier.ByteBudget);

  // An identical append/seal history reaches the identical verdict at
  // the identical point with the identical charge (the property that
  // keeps full() deterministic across backends).
  LanguageCache B(2, 1u << 20, Tier);
  EXPECT_EQ(Fill(B, N), N);
  EXPECT_TRUE(B.full());
  EXPECT_EQ(A.chargedBytes(), B.chargedBytes());
}

TEST(CompressedCache, TruncateDiscardsOnlyTheOpenWindow) {
  StoreTierConfig Tier;
  Tier.Compress = true;
  LanguageCache Comp(2, 256, Tier);
  std::vector<std::vector<uint64_t>> Rows;
  for (uint32_t I = 0; I != 40; ++I) {
    Rows.push_back(classRow(2, I, I + 17));
    Comp.append(Rows.back().data(), Provenance{});
  }
  Comp.setLevel(1, 0, 40);
  Comp.sealLevel();
  for (uint32_t I = 0; I != 20; ++I)
    Comp.append(classRow(2, I, I + 9999).data(), Provenance{});

  // Roll the open window back to the sealed boundary; the sealed rows
  // and the level table survive untouched, and the window refills.
  Comp.truncate(40);
  EXPECT_EQ(Comp.size(), 40u);
  EXPECT_EQ(Comp.windowRows(), 0u);
  EXPECT_EQ(Comp.level(1), std::make_pair(0u, 40u));
  for (uint32_t I = 0; I != 40; ++I)
    EXPECT_TRUE(equalWords(Comp.cs(I), Rows[I].data(), 2)) << I;
  std::vector<uint64_t> Fresh = classRow(2, 3, 424242);
  uint32_t Id = Comp.append(Fresh.data(), Provenance{});
  EXPECT_EQ(Id, 40u);
  EXPECT_TRUE(equalWords(Comp.cs(40), Fresh.data(), 2));
}

TEST(CompressedCache, SpillsAndPagesBackUnderTinyPinnedBudget) {
  StoreTierConfig Tier;
  Tier.Compress = true;
  Tier.SpillPath = spillBase("cache_spill");
  Tier.PinnedBytes = 1; // Every sealed chunk goes cold at the boundary.
  LanguageCache Comp(2, 512, Tier);
  LanguageCache Raw(2, 512);
  const uint32_t N = 200;
  for (uint32_t I = 0; I != N; ++I) {
    std::vector<uint64_t> Row = classRow(2, I, I * 3 + 1);
    Raw.append(Row.data(), Provenance{});
    Comp.append(Row.data(), Provenance{});
    if (I % 25 == 24)
      Comp.sealLevel();
  }
  Comp.sealLevel();

  // Everything sealed is on disk; nothing hot.
  EXPECT_GT(Comp.spilledChunks(), 0u);
  EXPECT_EQ(Comp.hotChunks(), 0u);
  EXPECT_EQ(Comp.hotBytes(), 0u);
  EXPECT_EQ(Comp.spilledBytes(), Comp.compressedBytes());

  // Reads page chunks back in and decode to the raw store's exact
  // bits; hot + spilled always partitions the sealed bytes.
  for (uint32_t I = 0; I != N; ++I)
    EXPECT_TRUE(equalWords(Comp.cs(I), Raw.cs(I), 2)) << I;
  EXPECT_GT(Comp.hotChunks(), 0u);
  EXPECT_EQ(Comp.hotBytes() + Comp.spilledBytes(), Comp.compressedBytes());

  // The next boundary re-enforces the budget: cold again, still exact.
  Comp.sealLevel();
  EXPECT_EQ(Comp.hotChunks(), 0u);
  for (uint32_t I = N; I-- > 0;)
    EXPECT_TRUE(equalWords(Comp.cs(I), Raw.cs(I), 2)) << I;
}

TEST(CompressedCache, WindowBudgetAutoSealsMidLevel) {
  // An 8-row window budget: the cache must seal mid-level on its own,
  // keep the open window under the cap, and stay bit-exact - no
  // sealLevel() call anywhere before the final one.
  const uint64_t RowBytes =
      LanguageCache::strideForWords(2) * sizeof(uint64_t);
  StoreTierConfig Tier;
  Tier.Compress = true;
  Tier.WindowBudget = 8 * RowBytes;
  LanguageCache Comp(2, 512, Tier);
  LanguageCache Raw(2, 512);
  const uint32_t N = 100;
  for (uint32_t I = 0; I != N; ++I) {
    std::vector<uint64_t> Row = classRow(2, I, I * 13 + 3);
    Raw.append(Row.data(), Provenance{});
    Comp.append(Row.data(), Provenance{});
    ASSERT_LE(Comp.windowRows() * RowBytes, Tier.WindowBudget) << I;
  }
  EXPECT_GT(Comp.sealedRows(), 0u);
  uint64_t CodecSum = 0;
  for (unsigned C = 0; C != NumRowCodecs; ++C)
    CodecSum += Comp.codecRows(C);
  EXPECT_EQ(CodecSum, Comp.sealedRows());
  for (uint32_t I = 0; I != N; ++I)
    EXPECT_TRUE(equalWords(Comp.cs(I), Raw.cs(I), 2)) << I;
  for (uint32_t I = N; I-- > 0;) {
    EXPECT_TRUE(equalWords(Comp.cs(I), Raw.cs(I), 2)) << I;
    EXPECT_EQ(Comp.rowHash(I), Raw.rowHash(I)) << I;
  }
}

TEST(CompressedCache, TruncateReopensSealedChunksExactly) {
  // Roll back below the sealed frontier, mid-chunk: chunks past the
  // cut drop, the straddling chunk's prefix decodes back into the
  // open window, and re-appended rows never see stale scratch-ring
  // copies. Run once hot and once with every chunk spilled to disk.
  for (bool Spill : {false, true}) {
    SCOPED_TRACE(Spill ? "spill" : "hot");
    StoreTierConfig Tier;
    Tier.Compress = true;
    Tier.WindowBudget =
        16 * LanguageCache::strideForWords(2) * sizeof(uint64_t);
    if (Spill) {
      Tier.SpillPath = spillBase("reopen_spill");
      Tier.PinnedBytes = 1;
    }
    LanguageCache Comp(2, 512, Tier);
    std::vector<std::vector<uint64_t>> Rows;
    for (uint32_t I = 0; I != 100; ++I) {
      Rows.push_back(classRow(2, I, I * 7 + 11));
      Comp.append(Rows.back().data(), Provenance{});
    }
    Comp.sealLevel();
    ASSERT_EQ(Comp.sealedRows(), 100u);
    if (Spill)
      ASSERT_GT(Comp.spilledChunks(), 0u);

    // 42 cuts into the third 16-row auto-seal chunk [32, 48).
    Comp.truncate(42);
    EXPECT_EQ(Comp.size(), 42u);
    EXPECT_EQ(Comp.windowRows(), 10u);
    EXPECT_EQ(Comp.sealedRows(), 32u);
    uint64_t CodecSum = 0;
    for (unsigned C = 0; C != NumRowCodecs; ++C)
      CodecSum += Comp.codecRows(C);
    EXPECT_EQ(CodecSum, Comp.sealedRows());
    for (uint32_t I = 0; I != 42; ++I)
      EXPECT_TRUE(equalWords(Comp.cs(I), Rows[I].data(), 2)) << I;

    // Overwrite the cut range with different rows; reads and a reseal
    // must serve the new bits everywhere.
    for (uint32_t I = 42; I != 100; ++I) {
      Rows[I] = classRow(2, I + 1, I * 31 + 5);
      ASSERT_EQ(Comp.append(Rows[I].data(), Provenance{}), I);
    }
    Comp.sealLevel();
    for (uint32_t I = 100; I-- > 0;)
      EXPECT_TRUE(equalWords(Comp.cs(I), Rows[I].data(), 2)) << I;
  }
}

//===----------------------------------------------------------------------===//
// Seal equivalence (the Sec. 11 determinism property)
//===----------------------------------------------------------------------===//

TEST(StoreEquivalence, CompressedEqualsRawAcrossBackendsAndShards) {
  for (const Spec &S : corpus()) {
    SCOPED_TRACE(S.toText());
    SynthOptions RawOpts;
    SynthResult Ref = synthesize(S, sigma01(), RawOpts);
    for (const char *Name : Backends) {
      for (unsigned Shards : ShardCounts) {
        SCOPED_TRACE(std::string(Name) + ", shards " +
                     std::to_string(Shards));
        SynthOptions Opts;
        Opts.Shards = Shards;
        Opts.CompressStore = true;
        SynthResult R = synthesizeWith(Name, S, sigma01(), Opts);
        expectSameAnswer(Ref, R);
        EXPECT_TRUE(R.Stats.StoreCompressed);
      }
    }
  }
}

TEST(StoreEquivalence, DiskTierPreservesResultsOnEveryBackend) {
  Spec S = introSpec();
  SynthResult Ref = synthesize(S, sigma01(), SynthOptions());
  for (const char *Name : Backends) {
    for (unsigned Shards : {1u, 3u}) {
      SCOPED_TRACE(std::string(Name) + ", shards " +
                   std::to_string(Shards));
      SynthOptions Opts;
      Opts.Shards = Shards;
      Opts.SpillDir = ::testing::TempDir();
      Opts.PinnedStoreBytes = 1; // Spill every sealed chunk.
      SynthResult R = synthesizeWith(Name, S, sigma01(), Opts);
      expectSameAnswer(Ref, R);
      ASSERT_TRUE(R.Stats.StoreCompressed);
      EXPECT_EQ(R.Stats.StoreHotBytes + R.Stats.StoreSpilledBytes,
                R.Stats.StoreCompressedBytes);
    }
  }
}

TEST(StoreEquivalence, WindowAutoSealIsInvisibleToEveryBackend) {
  // A 256-byte window budget seals many times inside every cost level
  // on the sequential append path (and is a no-op on the reserved-row
  // batch path) - results must not move on any backend or shard count.
  for (const Spec &S : corpus()) {
    SCOPED_TRACE(S.toText());
    SynthResult Ref = synthesize(S, sigma01(), SynthOptions());
    for (const char *Name : Backends) {
      for (unsigned Shards : {1u, 3u}) {
        SCOPED_TRACE(std::string(Name) + ", shards " +
                     std::to_string(Shards));
        SynthOptions Opts;
        Opts.Shards = Shards;
        Opts.CompressStore = true;
        Opts.WindowStoreBytes = 256;
        SynthResult R = synthesizeWith(Name, S, sigma01(), Opts);
        expectSameAnswer(Ref, R);
      }
    }
  }
}

TEST(StoreEquivalence, StatsReportTheCompressedFootprint) {
  SynthOptions Opts;
  Opts.CompressStore = true;
  SynthResult R = synthesize(introSpec(), sigma01(), Opts);
  ASSERT_EQ(R.Status, SynthStatus::Found);
  ASSERT_TRUE(R.Stats.StoreCompressed);
  EXPECT_GT(R.Stats.StoreSealedRows, 0u);
  EXPECT_GT(R.Stats.StoreCompressedBytes, 0u);
  EXPECT_GT(R.Stats.StoreCompressionRatio, 0.0);
  uint64_t CodecSum = 0;
  for (int T = 0; T != 4; ++T)
    CodecSum += R.Stats.StoreCodecRows[T];
  EXPECT_EQ(CodecSum, R.Stats.StoreSealedRows);
  EXPECT_EQ(R.Stats.StoreHotBytes + R.Stats.StoreSpilledBytes,
            R.Stats.StoreCompressedBytes);
  EXPECT_EQ(R.Stats.StoreSealedRows + R.Stats.StoreWindowRows,
            R.Stats.CacheEntries);

  // The raw run of the same query reports no store tier at all.
  SynthResult Raw = synthesize(introSpec(), sigma01(), SynthOptions());
  EXPECT_FALSE(Raw.Stats.StoreCompressed);
  EXPECT_EQ(Raw.Stats.StoreCompressedBytes, 0u);
}

//===----------------------------------------------------------------------===//
// Compressed snapshots
//===----------------------------------------------------------------------===//

TEST(CompressedSnapshot, SerializeRestoreSerializeIsByteIdentical) {
  for (unsigned Shards : ShardCounts) {
    SCOPED_TRACE(Shards);
    StoreTierConfig Tier;
    Tier.Compress = true;
    std::unique_ptr<ShardedStore> Store =
        populatedTieredStore(Shards, 100, Tier);
    std::string First = storeBytes(*Store);

    SnapshotReader R(First);
    std::unique_ptr<ShardedStore> Restored = loadShardedStore(R, Tier);
    ASSERT_NE(Restored, nullptr);
    EXPECT_FALSE(R.failed());

    ASSERT_EQ(Restored->size(), Store->size());
    ASSERT_EQ(Restored->shardCount(), Store->shardCount());
    EXPECT_EQ(Restored->sealedRows(), Store->sealedRows());
    EXPECT_EQ(Restored->compressedBytes(), Store->compressedBytes());
    for (unsigned C = 0; C != NumRowCodecs; ++C)
      EXPECT_EQ(Restored->codecRows(C), Store->codecRows(C));
    for (size_t Id = 0; Id != Store->size(); ++Id) {
      EXPECT_TRUE(equalWords(Restored->cs(Id), Store->cs(Id), 2)) << Id;
      EXPECT_EQ(Restored->rowHash(Id), Store->rowHash(Id)) << Id;
    }
    EXPECT_EQ(Restored->level(1), Store->level(1));
    EXPECT_EQ(Restored->level(3), Store->level(3));

    EXPECT_EQ(storeBytes(*Restored), First);

    RegexManager M;
    EXPECT_NE(Restored->reconstruct(Store->size() - 1, M), nullptr);
  }
}

TEST(CompressedSnapshot, SpilledChunksPageInAtSaveAndRoundTrip) {
  StoreTierConfig Tier;
  Tier.Compress = true;
  Tier.SpillPath = spillBase("snap_spill_a");
  Tier.PinnedBytes = 1;
  std::unique_ptr<ShardedStore> Store = populatedTieredStore(3, 90, Tier);
  EXPECT_GT(Store->spilledChunks(), 0u);

  std::string First = storeBytes(*Store); // Pages every chunk in.

  StoreTierConfig RestoreTier = Tier;
  RestoreTier.SpillPath = spillBase("snap_spill_b");
  SnapshotReader R(First);
  std::unique_ptr<ShardedStore> Restored =
      loadShardedStore(R, RestoreTier);
  ASSERT_NE(Restored, nullptr);
  ASSERT_EQ(Restored->size(), Store->size());
  for (size_t Id = 0; Id != Store->size(); ++Id)
    EXPECT_TRUE(equalWords(Restored->cs(Id), Store->cs(Id), 2)) << Id;
  EXPECT_EQ(storeBytes(*Restored), First);
}

TEST(CompressedSnapshot, RejectsModeMismatchAndTruncation) {
  StoreTierConfig Comp;
  Comp.Compress = true;
  std::unique_ptr<ShardedStore> Store = populatedTieredStore(2, 60, Comp);
  std::string Good = storeBytes(*Store);

  // A compressed stream must not load into a raw store, nor a raw
  // stream into a compressed one (the layouts do not mix).
  {
    SnapshotReader R(Good);
    EXPECT_EQ(loadShardedStore(R, {}), nullptr);
    EXPECT_TRUE(R.failed());
  }
  {
    std::unique_ptr<ShardedStore> Raw =
        populatedTieredStore(2, 60, StoreTierConfig{});
    std::string RawBytes = storeBytes(*Raw);
    SnapshotReader R(RawBytes);
    EXPECT_EQ(loadShardedStore(R, Comp), nullptr);
    EXPECT_TRUE(R.failed());
  }

  // Truncation at every prefix length: reject, never crash.
  for (size_t Cut = 0; Cut < Good.size(); Cut += 7) {
    SnapshotReader R(std::string_view(Good).substr(0, Cut));
    EXPECT_EQ(loadShardedStore(R, Comp), nullptr) << Cut;
    EXPECT_TRUE(R.failed()) << Cut;
  }
}

//===----------------------------------------------------------------------===//
// Park/resume over compressed stores
//===----------------------------------------------------------------------===//

TEST(CompressedSession, ParkResumeEqualsTheRawRun) {
  Spec S = introSpec();
  SynthResult Ref = synthesize(S, sigma01(), SynthOptions());
  for (const char *Backend : Backends) {
    for (bool Spill : {false, true}) {
      SCOPED_TRACE(std::string(Backend) + (Spill ? ", spill" : ""));
      SynthOptions Opts;
      Opts.Shards = 2;
      Opts.CompressStore = true;
      if (Spill) {
        Opts.SpillDir = ::testing::TempDir();
        Opts.PinnedStoreBytes = 1;
      }
      std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Opts);
      SearchSession Session(Q, createBackend(Backend));
      for (int I = 0; I != 4 && Session.state() == SessionState::Running;
           ++I)
        Session.step();
      ASSERT_EQ(Session.state(), SessionState::Running);

      SnapshotWriter W;
      ASSERT_TRUE(Session.canSave());
      ASSERT_TRUE(Session.save(W));
      std::string Error;
      std::unique_ptr<SearchSession> Restored = SearchSession::restore(
          W.buffer(), Q, createBackend(Backend), &Error);
      ASSERT_NE(Restored, nullptr) << Error;
      expectSameAnswer(Ref, Restored->run());

      // The paused original finishes in memory to the same answer.
      expectSameAnswer(Ref, Session.run());
    }
  }
}

TEST(CompressedSession, ParkResumeWithAutoSealedWindows) {
  // Park/resume while a tiny window budget auto-seals mid-level: the
  // snapshot carries mid-level chunk tilings, and the park-time
  // rollback to the last boundary truncates through auto-sealed
  // chunks (the reopen path) in a real search.
  Spec S = introSpec();
  SynthResult Ref = synthesize(S, sigma01(), SynthOptions());
  for (const char *Backend : Backends) {
    SCOPED_TRACE(Backend);
    SynthOptions Opts;
    Opts.Shards = 2;
    Opts.CompressStore = true;
    Opts.WindowStoreBytes = 256;
    std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Opts);
    SearchSession Session(Q, createBackend(Backend));
    for (int I = 0; I != 4 && Session.state() == SessionState::Running;
         ++I)
      Session.step();
    ASSERT_EQ(Session.state(), SessionState::Running);

    SnapshotWriter W;
    ASSERT_TRUE(Session.canSave());
    ASSERT_TRUE(Session.save(W));
    std::string Error;
    std::unique_ptr<SearchSession> Restored = SearchSession::restore(
        W.buffer(), Q, createBackend(Backend), &Error);
    ASSERT_NE(Restored, nullptr) << Error;
    expectSameAnswer(Ref, Restored->run());
    expectSameAnswer(Ref, Session.run());
  }
}
