//===- tests/dfa_test.cpp - DFA substrate tests --------------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "regex/Dfa.h"

#include "regex/Equivalence.h"
#include "regex/Matcher.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace paresy;

namespace {

const std::vector<char> Binary = {'0', '1'};

const Regex *parse(RegexManager &M, const char *Text) {
  ParseResult R = parseRegex(M, Text);
  EXPECT_TRUE(R) << Text << ": " << R.Error;
  return R.Re;
}

std::vector<std::string> allBinaryStrings(unsigned MaxLen) {
  std::vector<std::string> Out{""};
  size_t Begin = 0;
  for (unsigned Len = 1; Len <= MaxLen; ++Len) {
    size_t End = Out.size();
    for (size_t I = Begin; I != End; ++I) {
      Out.push_back(Out[I] + "0");
      Out.push_back(Out[I] + "1");
    }
    Begin = End;
  }
  return Out;
}

const Regex *randomRegex(RegexManager &M, Rng &R, int Budget) {
  if (Budget <= 1)
    return R.chance(0.5) ? M.literal('0') : M.literal('1');
  switch (R.below(5)) {
  case 0:
    return M.question(randomRegex(M, R, Budget - 1));
  case 1:
    return M.star(randomRegex(M, R, Budget - 1));
  case 2: {
    int Left = 1 + int(R.below(uint64_t(Budget - 1)));
    return M.concat(randomRegex(M, R, Left),
                    randomRegex(M, R, Budget - Left));
  }
  default: {
    int Left = 1 + int(R.below(uint64_t(Budget - 1)));
    return M.alt(randomRegex(M, R, Left),
                 randomRegex(M, R, Budget - Left));
  }
  }
}

} // namespace

TEST(Dfa, AcceptsMatchesRegexSemantics) {
  RegexManager M;
  for (const char *Pattern :
       {"10(0+1)*", "(0?1)*1", "0*1?0*", "@", "#", "(01)*", "0+1"}) {
    const Regex *Re = parse(M, Pattern);
    Dfa A = Dfa::fromRegex(M, Re, Binary);
    DerivativeMatcher D(M);
    for (const std::string &W : allBinaryStrings(6))
      ASSERT_EQ(A.accepts(W), D.matches(Re, W))
          << Pattern << " on '" << W << "'";
  }
}

TEST(Dfa, RejectsForeignCharacters) {
  RegexManager M;
  Dfa A = Dfa::fromRegex(M, parse(M, "(0+1)*"), Binary);
  EXPECT_TRUE(A.accepts("0101"));
  EXPECT_FALSE(A.accepts("01x1"));
}

TEST(Dfa, MinimizeKnownStateCounts) {
  RegexManager M;
  // Sigma*: one state.
  EXPECT_EQ(Dfa::fromRegex(M, parse(M, "(0+1)*"), Binary)
                .minimize()
                .stateCount(),
            1u);
  // Empty language: one (rejecting) state.
  EXPECT_EQ(Dfa::fromRegex(M, parse(M, "@"), Binary)
                .minimize()
                .stateCount(),
            1u);
  // "ends with 01": the canonical 3-state DFA.
  EXPECT_EQ(Dfa::fromRegex(M, parse(M, "(0+1)*01"), Binary)
                .minimize()
                .stateCount(),
            3u);
  // "even number of 0s": 2 states.
  EXPECT_EQ(Dfa::fromRegex(M, parse(M, "1*(01*01*)*"), Binary)
                .minimize()
                .stateCount(),
            2u);
  // epsilon: accepting start + sink.
  EXPECT_EQ(Dfa::fromRegex(M, parse(M, "#"), Binary)
                .minimize()
                .stateCount(),
            2u);
}

TEST(Dfa, MinimizePreservesLanguage) {
  RegexManager M;
  Rng R(99);
  for (int I = 0; I != 60; ++I) {
    const Regex *Re = randomRegex(M, R, 10);
    Dfa A = Dfa::fromRegex(M, Re, Binary);
    Dfa Min = A.minimize();
    EXPECT_LE(Min.stateCount(), A.stateCount()) << toString(Re);
    EXPECT_TRUE(Dfa::equivalent(A, Min)) << toString(Re);
    // Minimising twice is idempotent in size.
    EXPECT_EQ(Min.minimize().stateCount(), Min.stateCount())
        << toString(Re);
  }
}

TEST(Dfa, EquivalentAgreesWithDerivativeBisimulation) {
  RegexManager M;
  Rng R(7);
  for (int I = 0; I != 40; ++I) {
    const Regex *A = randomRegex(M, R, 8);
    const Regex *B = randomRegex(M, R, 8);
    bool ByDfa = Dfa::equivalent(Dfa::fromRegex(M, A, Binary),
                                 Dfa::fromRegex(M, B, Binary));
    bool ByBisim = areEquivalent(M, A, B, Binary);
    ASSERT_EQ(ByDfa, ByBisim)
        << toString(A) << " vs " << toString(B);
  }
}

TEST(Dfa, CountAcceptedKnownLanguages) {
  RegexManager M;
  // Sigma*: 2^n strings of length n.
  Dfa All = Dfa::fromRegex(M, parse(M, "(0+1)*"), Binary);
  EXPECT_EQ(All.countAccepted(0), 1u);
  EXPECT_EQ(All.countAccepted(5), 32u);
  EXPECT_EQ(All.countAccepted(10), 1024u);
  // 10(0+1)*: 2^(n-2) strings of length n >= 2.
  Dfa Intro = Dfa::fromRegex(M, parse(M, "10(0+1)*"), Binary);
  EXPECT_EQ(Intro.countAccepted(0), 0u);
  EXPECT_EQ(Intro.countAccepted(1), 0u);
  EXPECT_EQ(Intro.countAccepted(2), 1u);
  EXPECT_EQ(Intro.countAccepted(6), 16u);
  // Even number of 0s of length 4: C(4,0)+C(4,2)+C(4,4) = 8.
  Dfa Even = Dfa::fromRegex(M, parse(M, "1*(01*01*)*"), Binary);
  EXPECT_EQ(Even.countAccepted(4), 8u);
  // Empty language: always zero.
  Dfa None = Dfa::fromRegex(M, parse(M, "@"), Binary);
  EXPECT_EQ(None.countAccepted(3), 0u);
}

TEST(Dfa, CountAgreesWithEnumeration) {
  RegexManager M;
  Rng R(31);
  for (int I = 0; I != 25; ++I) {
    const Regex *Re = randomRegex(M, R, 8);
    Dfa A = Dfa::fromRegex(M, Re, Binary);
    DerivativeMatcher D(M);
    for (unsigned Len = 0; Len <= 5; ++Len) {
      uint64_t Count = 0;
      for (const std::string &W : allBinaryStrings(5))
        if (W.size() == Len && D.matches(Re, W))
          ++Count;
      ASSERT_EQ(A.countAccepted(Len), Count)
          << toString(Re) << " at length " << Len;
    }
  }
}

TEST(Dfa, SampleAcceptedProducesMembers) {
  RegexManager M;
  const Regex *Re = parse(M, "10(0+1)*");
  Dfa A = Dfa::fromRegex(M, Re, Binary);
  DerivativeMatcher D(M);
  Rng R(5);
  std::string W;
  for (int I = 0; I != 100; ++I) {
    ASSERT_TRUE(A.sampleAccepted(6, R, W));
    EXPECT_EQ(W.size(), 6u);
    EXPECT_TRUE(D.matches(Re, W)) << W;
  }
  // No member of the required length -> false.
  EXPECT_FALSE(A.sampleAccepted(1, R, W));
}

TEST(Dfa, SampleIsRoughlyUniform) {
  RegexManager M;
  // Language 10(0+1)* has 4 members of length 4; a uniform sampler
  // must hit all of them over 400 draws.
  Dfa A = Dfa::fromRegex(M, parse(M, "10(0+1)*"), Binary);
  Rng R(17);
  std::string W;
  std::set<std::string> Seen;
  for (int I = 0; I != 400; ++I) {
    ASSERT_TRUE(A.sampleAccepted(4, R, W));
    Seen.insert(W);
  }
  EXPECT_EQ(Seen.size(), 4u);
}
