//===- tests/service_test.cpp - Staging split and the synthesis service -------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The service-layer contract (DESIGN.md Sec. 5):
///
///   (a) a result-cache hit returns a result bit-identical to the cold
///       run, without invoking any backend (counting test backend);
///   (b) N concurrent submissions of one spec run the search exactly
///       once (gated test backend holds the search open while the
///       submissions pile up);
///   (c) runSearch results are unchanged after the stage/run split -
///       stage()+runStaged() equals runSearch() equals the sequential
///       reference, for every registered backend, on every
///       deterministic SynthResult field.
///
/// Plus: staged-artifact sharing (one StagedQuery across backends and
/// repeat runs; restage() reusing the universe/guide table), LRU
/// eviction, worker-count determinism, and queue bookkeeping.
///
//===----------------------------------------------------------------------===//

#include "service/SynthService.h"

#include "core/Synthesizer.h"
#include "engine/Backend.h"
#include "engine/BackendRegistry.h"
#include "engine/CpuBackend.h"
#include "engine/SearchDriver.h"
#include "lang/Universe.h"
#include "regex/Matcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

using namespace paresy;
using namespace paresy::engine;
using namespace paresy::service;

namespace {

Spec introSpec() {
  return Spec({"10", "101", "100", "1010", "1011", "1000", "1001"},
              {"", "0", "1", "00", "11", "010"});
}

Spec example36Spec() {
  return Spec({"1", "011", "1011", "11011"}, {"", "10", "101", "0011"});
}

std::vector<Spec> corpus() {
  return {introSpec(),
          example36Spec(),
          Spec({"0", "00", "000"}, {}),
          Spec({"1"}, {"", "0", "11", "10"}),
          Spec({"", "0", "00"}, {"1", "01", "10"}),
          Spec({"10"}, {"", "0", "1"})};
}

/// Every SynthResult field that is deterministic across runs - all of
/// them except the two wall-clock figures (PrecomputeSeconds,
/// SearchSeconds), which no two physical runs can reproduce bit for
/// bit.
void expectSameResult(const SynthResult &A, const SynthResult &B) {
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.Regex, B.Regex);
  EXPECT_EQ(A.Cost, B.Cost);
  EXPECT_EQ(A.Message, B.Message);
  EXPECT_EQ(A.Stats.CandidatesGenerated, B.Stats.CandidatesGenerated);
  EXPECT_EQ(A.Stats.UniqueLanguages, B.Stats.UniqueLanguages);
  EXPECT_EQ(A.Stats.CacheEntries, B.Stats.CacheEntries);
  EXPECT_EQ(A.Stats.MemoryBytes, B.Stats.MemoryBytes);
  EXPECT_EQ(A.Stats.UniverseSize, B.Stats.UniverseSize);
  EXPECT_EQ(A.Stats.CsWords, B.Stats.CsWords);
  EXPECT_EQ(A.Stats.GuidePairs, B.Stats.GuidePairs);
  EXPECT_EQ(A.Stats.PairsVisited, B.Stats.PairsVisited);
  EXPECT_EQ(A.Stats.LastCompletedCost, B.Stats.LastCompletedCost);
  EXPECT_EQ(A.Stats.OnTheFly, B.Stats.OnTheFly);
}

/// Byte-for-byte equality, wall-clock fields included: only copies of
/// one physical run (i.e. cache hits) can pass this.
void expectByteIdentical(const SynthResult &A, const SynthResult &B) {
  expectSameResult(A, B);
  EXPECT_EQ(A.Stats.PrecomputeSeconds, B.Stats.PrecomputeSeconds);
  EXPECT_EQ(A.Stats.SearchSeconds, B.Stats.SearchSeconds);
}

/// The backend-agnostic result fields (the engine_test equivalence
/// subset): what *different* backends must agree on. MemoryBytes and
/// PairsVisited are backend-dependent by design (backends partition
/// the budget and account work differently).
void expectBackendsAgree(const SynthResult &A, const SynthResult &B) {
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.Regex, B.Regex);
  EXPECT_EQ(A.Cost, B.Cost);
  EXPECT_EQ(A.Message, B.Message);
  EXPECT_EQ(A.Stats.CandidatesGenerated, B.Stats.CandidatesGenerated);
  EXPECT_EQ(A.Stats.UniqueLanguages, B.Stats.UniqueLanguages);
  EXPECT_EQ(A.Stats.UniverseSize, B.Stats.UniverseSize);
  EXPECT_EQ(A.Stats.LastCompletedCost, B.Stats.LastCompletedCost);
}

//===----------------------------------------------------------------------===//
// Test backends
//===----------------------------------------------------------------------===//

/// Counts backend invocations. A cache hit must not touch any of
/// these counters.
struct InvocationCounters {
  std::atomic<uint64_t> Created{0};
  std::atomic<uint64_t> Prepared{0};
  std::atomic<uint64_t> Levels{0};
};

InvocationCounters &counters() {
  static InvocationCounters C;
  return C;
}

/// The sequential backend, instrumented.
class CountingBackend : public Backend {
public:
  CountingBackend() { ++counters().Created; }
  std::string_view name() const override { return "counting-cpu"; }
  size_t planCacheCapacity(const SearchContext &Ctx,
                           uint64_t BudgetBytes) override {
    return Inner.planCacheCapacity(Ctx, BudgetBytes);
  }
  void prepare(SearchContext &Ctx) override {
    ++counters().Prepared;
    Inner.prepare(Ctx);
  }
  LevelOutcome runLevel(SearchContext &Ctx, uint64_t LevelCost,
                        LevelTasks &Tasks) override {
    ++counters().Levels;
    return Inner.runLevel(Ctx, LevelCost, Tasks);
  }
  uint64_t auxBytesUsed() const override { return Inner.auxBytesUsed(); }

private:
  CpuBackend Inner;
};

/// A gate the gated backend blocks on in prepare(), so a search can be
/// held open while further submissions arrive.
struct SearchGate {
  std::mutex M;
  std::condition_variable Cv;
  bool Open = false;

  void reset() {
    std::lock_guard<std::mutex> Lock(M);
    Open = false;
  }
  void open() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Open = true;
    }
    Cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Open; });
  }
};

SearchGate &gate() {
  static SearchGate G;
  return G;
}

class GatedBackend : public CountingBackend {
public:
  std::string_view name() const override { return "gated-cpu"; }
  void prepare(SearchContext &Ctx) override {
    gate().wait();
    CountingBackend::prepare(Ctx);
  }
};

bool registerTestBackends() {
  static bool Done = [] {
    registerBackend("counting-cpu", [](const BackendConfig &) {
      return std::make_unique<CountingBackend>();
    });
    registerBackend("gated-cpu", [](const BackendConfig &) {
      return std::make_unique<GatedBackend>();
    });
    return true;
  }();
  return Done;
}

} // namespace

//===----------------------------------------------------------------------===//
// (c) The stage/run split preserves runSearch bit for bit
//===----------------------------------------------------------------------===//

TEST(StagingSplit, RunSearchUnchangedOnEveryBackend) {
  registerTestBackends();
  SynthOptions Opts;
  for (const char *Name : {"cpu", "cpu-parallel", "gpusim"}) {
    for (const Spec &S : corpus()) {
      SCOPED_TRACE(std::string(Name) + "\n" + S.toText());
      SynthResult Ref = synthesize(S, Alphabet::of("01"), Opts);

      // The composed wrapper still agrees with the sequential
      // reference on every backend-agnostic field...
      SynthResult Composed = synthesizeWith(Name, S, Alphabet::of("01"),
                                            Opts);
      expectBackendsAgree(Ref, Composed);

      // ...and the split called explicitly reproduces the composed
      // wrapper on *every* deterministic field, including the
      // backend-specific ones.
      std::shared_ptr<const StagedQuery> Q =
          stage(S, Alphabet::of("01"), Opts);
      std::unique_ptr<Backend> B = createBackend(Name);
      ASSERT_NE(B, nullptr);
      SynthResult Split = runStaged(*Q, *B);
      expectSameResult(Composed, Split);
    }
  }
}

TEST(StagingSplit, ImmediateQueriesResolveAtStageTime) {
  Alphabet Sigma = Alphabet::of("01");
  SynthOptions Opts;

  std::shared_ptr<const StagedQuery> Invalid =
      stage(Spec({"0"}, {"0"}), Sigma, Opts);
  ASSERT_TRUE(Invalid->immediate());
  EXPECT_EQ(Invalid->immediateResult().Status, SynthStatus::InvalidInput);
  EXPECT_EQ(Invalid->universe(), nullptr);

  std::shared_ptr<const StagedQuery> Trivial =
      stage(Spec({}, {"0", "1"}), Sigma, Opts);
  ASSERT_TRUE(Trivial->immediate());
  EXPECT_EQ(Trivial->immediateResult().Regex, "@");

  std::shared_ptr<const StagedQuery> Staged =
      stage(introSpec(), Sigma, Opts);
  EXPECT_FALSE(Staged->immediate());
  ASSERT_NE(Staged->universe(), nullptr);
  ASSERT_NE(Staged->guideTable(), nullptr);
}

TEST(StagingSplit, OneStagedQueryServesRepeatRunsAndAllBackends) {
  SynthOptions Opts;
  Spec S = introSpec();
  std::shared_ptr<const StagedQuery> Q = stage(S, Alphabet::of("01"), Opts);
  SynthResult Ref = synthesize(S, Alphabet::of("01"), Opts);
  for (const char *Name : {"cpu", "cpu-parallel", "gpusim"}) {
    SCOPED_TRACE(Name);
    // Repeat runs off one staged artifact are deterministic in every
    // field; across backends the agnostic fields agree.
    std::unique_ptr<Backend> B1 = createBackend(Name);
    std::unique_ptr<Backend> B2 = createBackend(Name);
    SynthResult First = runStaged(*Q, *B1);
    SynthResult Second = runStaged(*Q, *B2);
    expectSameResult(First, Second);
    expectBackendsAgree(Ref, First);
  }
}

TEST(StagingSplit, ConcurrentRunsShareOneStagedQuery) {
  SynthOptions Opts;
  std::shared_ptr<const StagedQuery> Q =
      stage(introSpec(), Alphabet::of("01"), Opts);
  SynthResult Ref = synthesize(introSpec(), Alphabet::of("01"), Opts);
  std::vector<SynthResult> Results(8);
  std::vector<std::thread> Threads;
  for (size_t I = 0; I != Results.size(); ++I)
    Threads.emplace_back([&, I] {
      std::unique_ptr<Backend> B = createBackend("cpu");
      Results[I] = runStaged(*Q, *B);
    });
  for (std::thread &T : Threads)
    T.join();
  for (const SynthResult &R : Results)
    expectSameResult(Ref, R);
}

TEST(StagingSplit, RestageSharesArtifactsAcrossSweepOptions) {
  SynthOptions Opts;
  std::shared_ptr<const StagedQuery> Base =
      stage(introSpec(), Alphabet::of("01"), Opts);

  SynthOptions Dearer;
  Dearer.Cost = CostFn(2, 1, 3, 1, 1);
  std::shared_ptr<const StagedQuery> Re = restage(*Base, Dearer);
  // The expensive artifacts are shared, not rebuilt.
  EXPECT_EQ(Re->universe().get(), Base->universe().get());
  EXPECT_EQ(Re->guideTable().get(), Base->guideTable().get());

  // And the run is exactly the cold run under the new options.
  std::unique_ptr<Backend> B = createBackend("cpu");
  expectSameResult(synthesize(introSpec(), Alphabet::of("01"), Dearer),
                   runStaged(*Re, *B));

  // Geometry changes force a fresh universe.
  SynthOptions Unpadded;
  Unpadded.PadToPowerOfTwo = false;
  std::shared_ptr<const StagedQuery> Fresh = restage(*Base, Unpadded);
  EXPECT_NE(Fresh->universe().get(), Base->universe().get());
  std::unique_ptr<Backend> B2 = createBackend("cpu");
  expectSameResult(synthesize(introSpec(), Alphabet::of("01"), Unpadded),
                   runStaged(*Fresh, *B2));
}

TEST(StagingSplit, RestageToGuideTableOffAndOn) {
  SynthOptions NoGuide;
  NoGuide.UseGuideTable = false;
  std::shared_ptr<const StagedQuery> Base =
      stage(example36Spec(), Alphabet::of("01"), NoGuide);
  EXPECT_EQ(Base->guideTable(), nullptr);

  // Re-staging to guide-table mode builds the table over the shared
  // universe.
  SynthOptions WithGuide;
  std::shared_ptr<const StagedQuery> Re = restage(*Base, WithGuide);
  EXPECT_EQ(Re->universe().get(), Base->universe().get());
  ASSERT_NE(Re->guideTable(), nullptr);
  std::unique_ptr<Backend> B = createBackend("cpu");
  expectSameResult(synthesize(example36Spec(), Alphabet::of("01"),
                              WithGuide),
                   runStaged(*Re, *B));
}

//===----------------------------------------------------------------------===//
// (a) Cache hits are byte-identical and invoke no backend
//===----------------------------------------------------------------------===//

TEST(SynthService, CacheHitIsByteIdenticalAndRunsNoBackend) {
  registerTestBackends();
  ServiceOptions SOpts;
  SOpts.Backend = "counting-cpu";
  SynthService Service(std::move(SOpts));

  Spec S = introSpec();
  uint64_t Created0 = counters().Created;
  uint64_t Prepared0 = counters().Prepared;
  uint64_t Levels0 = counters().Levels;

  SynthResult Cold = Service.synthesize(S, Alphabet::of("01"));
  ASSERT_TRUE(Cold.found());
  EXPECT_EQ(counters().Created, Created0 + 1);
  EXPECT_EQ(counters().Prepared, Prepared0 + 1);
  uint64_t LevelsAfterCold = counters().Levels;
  EXPECT_GT(LevelsAfterCold, Levels0);

  // Same query, permuted example order: served from cache, backend
  // untouched on every counter.
  Spec Shuffled(
      {"1001", "10", "1000", "1011", "101", "1010", "100"},
      {"010", "", "11", "00", "1", "0"});
  SynthResult Hit = Service.synthesize(Shuffled, Alphabet::of("01"));
  expectByteIdentical(Cold, Hit);
  EXPECT_EQ(counters().Created, Created0 + 1);
  EXPECT_EQ(counters().Prepared, Prepared0 + 1);
  EXPECT_EQ(counters().Levels, LevelsAfterCold);

  ServiceStats St = Service.stats();
  EXPECT_EQ(St.Submitted, 2u);
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Searches, 1u);

  // And the hit equals what the stock backend computes cold.
  expectSameResult(synthesize(S, Alphabet::of("01"), SynthOptions()), Hit);
}

//===----------------------------------------------------------------------===//
// (b) Concurrent identical submissions run the search exactly once
//===----------------------------------------------------------------------===//

TEST(SynthService, ConcurrentSubmissionsCoalesceIntoOneSearch) {
  registerTestBackends();
  gate().reset();

  ServiceOptions SOpts;
  SOpts.Backend = "gated-cpu";
  SOpts.Workers = 2;
  SynthService Service(std::move(SOpts));

  uint64_t Prepared0 = counters().Prepared;
  constexpr unsigned N = 8;
  Spec S = example36Spec();

  std::vector<SynthService::ResultFuture> Futures(N);
  std::vector<std::thread> Submitters;
  for (unsigned I = 0; I != N; ++I)
    Submitters.emplace_back([&, I] {
      Futures[I] = Service.submit(S, Alphabet::of("01"));
    });
  for (std::thread &T : Submitters)
    T.join();

  // All eight are in the system, the search is held at the gate:
  // exactly one miss, everyone else coalesced onto it.
  ServiceStats St = Service.stats();
  EXPECT_EQ(St.Submitted, N);
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(St.Coalesced, N - 1);
  EXPECT_EQ(St.Hits, 0u);

  gate().open();
  SynthResult Ref = synthesize(S, Alphabet::of("01"), SynthOptions());
  for (unsigned I = 0; I != N; ++I) {
    SynthResult R = Futures[I].get();
    expectSameResult(Ref, R);
    expectByteIdentical(Futures[0].get(), R);
  }
  EXPECT_EQ(counters().Prepared, Prepared0 + 1);
  EXPECT_EQ(Service.stats().Searches, 1u);
}

//===----------------------------------------------------------------------===//
// Service behaviour
//===----------------------------------------------------------------------===//

TEST(SynthService, MatchesColdRunsAcrossCorpusAndWorkerCounts) {
  std::vector<Spec> Specs = corpus();
  SynthOptions Opts;
  std::vector<SynthResult> Refs;
  for (const Spec &S : Specs)
    Refs.push_back(synthesize(S, Alphabet::of("01"), Opts));
  for (unsigned Workers : {0u, 1u, 4u}) {
    SCOPED_TRACE(Workers);
    ServiceOptions SOpts;
    SOpts.Workers = Workers;
    SynthService Service(std::move(SOpts));
    std::vector<SynthResult> Results =
        Service.synthesizeAll(Specs, Alphabet::of("01"), Opts);
    ASSERT_EQ(Results.size(), Specs.size());
    for (size_t I = 0; I != Specs.size(); ++I) {
      SCOPED_TRACE(I);
      expectSameResult(Refs[I], Results[I]);
    }
  }
}

TEST(SynthService, ImmediateRequestsBypassTheCache) {
  SynthService Service{{}};

  // Invalid: duplicate example. Must NOT be keyed on the canonical
  // (deduplicated) spec, which is the valid {"0"}.
  Spec Duplicated({"0", "0"}, {});
  SynthResult Invalid = Service.synthesize(Duplicated, Alphabet::of("01"));
  EXPECT_EQ(Invalid.Status, SynthStatus::InvalidInput);
  EXPECT_NE(Invalid.Message.find("duplicate"), std::string::npos);

  // The deduplicated spec still synthesizes normally afterwards.
  SynthResult Valid = Service.synthesize(Spec({"0"}, {}),
                                         Alphabet::of("01"));
  EXPECT_TRUE(Valid.found());

  // Trivial specs resolve inline.
  SynthResult Empty = Service.synthesize(Spec({}, {"1"}),
                                         Alphabet::of("01"));
  EXPECT_EQ(Empty.Regex, "@");

  ServiceStats St = Service.stats();
  EXPECT_EQ(St.Immediate, 2u);
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(St.Hits, 0u);
}

TEST(SynthService, UnknownBackendMatchesSynthesizeWith) {
  ServiceOptions SOpts;
  SOpts.Backend = "warp9";
  SynthService Service(std::move(SOpts));
  SynthResult R = Service.synthesize(introSpec(), Alphabet::of("01"));
  SynthResult Ref = synthesizeWith("warp9", introSpec(),
                                   Alphabet::of("01"), SynthOptions());
  EXPECT_EQ(R.Status, SynthStatus::InvalidInput);
  EXPECT_EQ(R.Message, Ref.Message);
}

TEST(SynthService, LruEvictionAndReHit) {
  ServiceOptions SOpts;
  SOpts.ResultCacheCapacity = 1;
  SynthService Service(std::move(SOpts));
  Alphabet Sigma = Alphabet::of("01");

  Spec A = introSpec();
  Spec B = example36Spec();
  Service.synthesize(A, Sigma); // Miss, cached.
  Service.synthesize(B, Sigma); // Miss, evicts A.
  Service.synthesize(A, Sigma); // Miss again (was evicted), evicts B.
  Service.synthesize(A, Sigma); // Hit.

  ServiceStats St = Service.stats();
  EXPECT_EQ(St.Misses, 3u);
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Evictions, 2u);
}

TEST(SynthService, StagedArtifactsReusedAcrossSweepOptions) {
  SynthService Service{{}};
  Alphabet Sigma = Alphabet::of("01");
  Spec S = introSpec();

  SynthOptions Cheap;
  SynthOptions Dear;
  Dear.Cost = CostFn(2, 1, 3, 1, 1);

  SynthResult R1 = Service.synthesize(S, Sigma, Cheap);
  SynthResult R2 = Service.synthesize(S, Sigma, Dear);
  ASSERT_TRUE(R1.found());
  ASSERT_TRUE(R2.found());

  // Different query fingerprints (two misses), one staging.
  ServiceStats St = Service.stats();
  EXPECT_EQ(St.Misses, 2u);
  EXPECT_EQ(St.StagedMisses, 1u);
  EXPECT_EQ(St.StagedHits, 1u);

  // Both results equal their cold references.
  expectSameResult(synthesize(S, Sigma, Cheap), R1);
  expectSameResult(synthesize(S, Sigma, Dear), R2);
}

TEST(SynthService, ManyRequestsDrainThroughBoundedQueue) {
  ServiceOptions SOpts;
  SOpts.Workers = 3;
  SOpts.MaxQueueDepth = 2; // Deliberately tight: submit must block
                           // for space, never deadlock or drop.
  SynthService Service(std::move(SOpts));
  Alphabet Sigma = Alphabet::of("01");

  std::vector<Spec> Specs = corpus();
  std::vector<SynthResult> Results =
      Service.synthesizeAll(Specs, Sigma, SynthOptions());
  ASSERT_EQ(Results.size(), Specs.size());
  for (size_t I = 0; I != Specs.size(); ++I)
    expectSameResult(synthesize(Specs[I], Sigma, SynthOptions()),
                     Results[I]);
  ServiceStats St = Service.stats();
  EXPECT_EQ(St.QueueDepth, 0u);
  EXPECT_LE(St.PeakQueueDepth, 2u);
}

TEST(SynthService, TimeoutResultsAreNotCached) {
  // Timeout is wall-clock-dependent: replaying it from the cache
  // would pin a transient failure forever. Each identical request
  // must re-run.
  SynthService Service{{}};
  SynthOptions Hopeless;
  Hopeless.TimeoutSeconds = 1e-9;
  Spec S = introSpec();

  SynthResult First = Service.synthesize(S, Alphabet::of("01"), Hopeless);
  EXPECT_EQ(First.Status, SynthStatus::Timeout);
  SynthResult Second = Service.synthesize(S, Alphabet::of("01"), Hopeless);
  EXPECT_EQ(Second.Status, SynthStatus::Timeout);

  ServiceStats St = Service.stats();
  EXPECT_EQ(St.Misses, 2u);
  EXPECT_EQ(St.Hits, 0u);
  EXPECT_EQ(St.Searches, 2u);
  // An *equal*-deadline retry must not warm-start either: the parked
  // clock would replay the first run's Timeout instantly, pinning it
  // just as a cached result would. Only a strictly larger deadline
  // resumes the parked session (see session_test).
  EXPECT_EQ(St.SessionsResumed, 0u);
  // The staged artifact, by contrast, is reused across the re-runs.
  EXPECT_EQ(St.StagedHits, 1u);
}

TEST(SynthService, StagedCacheRespectsByteBudget) {
  Spec S = introSpec();
  Alphabet Sigma = Alphabet::of("01");
  SynthOptions Cheap;
  SynthOptions Dear;
  Dear.Cost = CostFn(2, 1, 3, 1, 1);

  // A one-byte budget: no artifact fits, so nothing is pinned and
  // every request re-stages.
  ServiceOptions Tiny;
  Tiny.StagedCacheBytes = 1;
  SynthService Small(std::move(Tiny));
  Small.synthesize(S, Sigma, Cheap);
  Small.synthesize(S, Sigma, Dear);
  ServiceStats St = Small.stats();
  EXPECT_EQ(St.StagedHits, 0u);
  EXPECT_EQ(St.StagedMisses, 2u);
  EXPECT_EQ(St.StagedBytes, 0u);

  // A roomy budget pins the artifact once and reports its bytes.
  SynthService Roomy{{}};
  Roomy.synthesize(S, Sigma, Cheap);
  Roomy.synthesize(S, Sigma, Dear);
  St = Roomy.stats();
  EXPECT_EQ(St.StagedHits, 1u);
  EXPECT_GT(St.StagedBytes, 0u);
}

TEST(SynthService, DestructorCompletesPendingFutures) {
  std::vector<SynthService::ResultFuture> Futures;
  {
    ServiceOptions SOpts;
    SOpts.Workers = 1;
    SynthService Service(std::move(SOpts));
    for (const Spec &S : corpus())
      Futures.push_back(Service.submit(S, Alphabet::of("01")));
    // Service destroyed with work likely still queued.
  }
  for (auto &F : Futures) {
    SynthResult R = F.get(); // Must not block forever or throw.
    EXPECT_NE(R.Status, SynthStatus::InvalidInput);
  }
}
