//===- tests/session_test.cpp - Resumable search sessions ---------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// DESIGN.md Sec. 9 invariants:
///
///  * snapshot round trips: serialize -> restore -> serialize is
///    byte-identical for ShardedStore / CsHashSet across shard counts,
///    and truncated or corrupted snapshots are rejected, never acted
///    on;
///  * resume equivalence: pause at any level boundary -> snapshot ->
///    restore -> resume yields results, costs and candidate counts
///    bit-identical to one uninterrupted run, on every backend;
///  * budget extension: a session parked on NotFound/Timeout, resumed
///    with a wider budget, equals a cold run at that budget - in
///    memory, through a snapshot, and through the SynthService resume
///    cache (ServiceStats counters prove the warm start);
///  * restage sharing: budget-only option changes never rebuild staged
///    artifacts (the property cheap resumes rely on).
///
//===----------------------------------------------------------------------===//

#include "core/CsHashSet.h"
#include "core/ShardedStore.h"
#include "core/Snapshot.h"
#include "engine/BackendRegistry.h"
#include "engine/CpuBackend.h"
#include "engine/CpuParallelBackend.h"
#include "engine/SearchDriver.h"
#include "engine/Session.h"
#include "lang/Fingerprint.h"
#include "lang/Universe.h"
#include "service/SynthService.h"
#include "support/Bits.h"

#include <gtest/gtest.h>

using namespace paresy;
using namespace paresy::engine;

namespace {

const char *const Backends[] = {"cpu", "cpu-parallel", "gpusim"};
const unsigned ShardCounts[] = {1, 2, 3, 7};

Alphabet sigma01() { return Alphabet::of("01"); }

Spec introSpec() {
  return Spec({"10", "101", "100", "1010", "1011", "1000", "1001"},
              {"", "0", "1", "00", "11", "010"});
}

std::vector<Spec> corpus() {
  return {introSpec(),
          Spec({"1", "011", "1011", "11011"}, {"", "10", "101", "0011"}),
          Spec({"", "0", "00"}, {"1", "01", "10"})};
}

/// Every deterministic field two equivalent runs must agree on (the
/// wall-clock figures can never reproduce bit for bit).
void expectEquivalent(const SynthResult &A, const SynthResult &B) {
  ASSERT_EQ(A.Status, B.Status) << statusName(B.Status);
  EXPECT_EQ(A.Regex, B.Regex);
  EXPECT_EQ(A.Cost, B.Cost);
  EXPECT_EQ(A.Message, B.Message);
  EXPECT_EQ(A.Stats.CandidatesGenerated, B.Stats.CandidatesGenerated);
  EXPECT_EQ(A.Stats.UniqueLanguages, B.Stats.UniqueLanguages);
  EXPECT_EQ(A.Stats.CacheEntries, B.Stats.CacheEntries);
  EXPECT_EQ(A.Stats.MemoryBytes, B.Stats.MemoryBytes);
  EXPECT_EQ(A.Stats.PairsVisited, B.Stats.PairsVisited);
  EXPECT_EQ(A.Stats.LastCompletedCost, B.Stats.LastCompletedCost);
  EXPECT_EQ(A.Stats.OnTheFly, B.Stats.OnTheFly);
  EXPECT_EQ(A.Stats.ShardCount, B.Stats.ShardCount);
  EXPECT_EQ(A.Stats.ShardRows, B.Stats.ShardRows);
}

SynthResult coldRun(const Spec &S, const SynthOptions &Opts,
                    const std::string &Backend) {
  std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Opts);
  std::unique_ptr<engine::Backend> B = createBackend(Backend);
  return runStaged(*Q, *B);
}

/// A 2-word CS with a recognisable pattern per seed.
std::vector<uint64_t> patternCs(uint64_t Seed) {
  return {hashMix64(Seed), hashMix64(Seed + 0x5eed)};
}

/// A store populated with \p Rows patterned rows whose provenance
/// forms valid (strictly lower-id) operand chains, plus level ranges.
std::unique_ptr<ShardedStore> populatedStore(unsigned Shards,
                                             uint32_t Rows) {
  // Per-shard capacity roomy enough that hash skew (or the truncate
  // test growing past Rows) never overflows a shard.
  auto Store = std::make_unique<ShardedStore>(2, Shards, Rows + 40);
  for (uint32_t I = 0; I != Rows; ++I) {
    Provenance P;
    if (I < 2) {
      P.Kind = CsOp::Literal;
      P.Symbol = char('0' + I);
    } else if (I % 3 == 0) {
      P.Kind = CsOp::Star;
      P.Lhs = I / 2;
    } else {
      P.Kind = I % 3 == 1 ? CsOp::Concat : CsOp::Union;
      P.Lhs = I / 2;
      P.Rhs = I / 3;
    }
    Store->append(patternCs(I).data(), P);
  }
  Store->setLevel(1, 0, Rows / 2);
  Store->setLevel(3, Rows / 2, Rows);
  return Store;
}

std::string storeBytes(const ShardedStore &Store) {
  SnapshotWriter W;
  saveShardedStore(W, Store);
  return W.take();
}

} // namespace

//===----------------------------------------------------------------------===//
// Snapshot primitives
//===----------------------------------------------------------------------===//

TEST(Snapshot, PrimitivesRoundTripLittleEndian) {
  SnapshotWriter W;
  W.u8(0xab);
  W.u16(0x1234);
  W.u32(0xdeadbeef);
  W.u64(0x0123456789abcdefULL);
  W.f64(3.25);
  W.str("hello");
  // The stream is defined byte for byte: u16 0x1234 is 0x34 0x12.
  EXPECT_EQ(uint8_t(W.buffer()[1]), 0x34);
  EXPECT_EQ(uint8_t(W.buffer()[2]), 0x12);

  SnapshotReader R(W.buffer());
  uint8_t V8 = 0;
  uint16_t V16 = 0;
  uint32_t V32 = 0;
  uint64_t V64 = 0;
  double F = 0;
  std::string S;
  EXPECT_TRUE(R.u8(V8) && R.u16(V16) && R.u32(V32) && R.u64(V64) &&
              R.f64(F) && R.str(S));
  EXPECT_EQ(V8, 0xab);
  EXPECT_EQ(V16, 0x1234);
  EXPECT_EQ(V32, 0xdeadbeefu);
  EXPECT_EQ(V64, 0x0123456789abcdefULL);
  EXPECT_EQ(F, 3.25);
  EXPECT_EQ(S, "hello");
  EXPECT_TRUE(R.atEnd());
  EXPECT_FALSE(R.u8(V8)); // Past the end fails and latches.
  EXPECT_TRUE(R.failed());
}

TEST(Snapshot, SectionsBoundReadsAndSkipUnreadPayload) {
  SnapshotWriter W;
  size_t Outer = W.beginSection("outer");
  W.u64(1);
  size_t Inner = W.beginSection("inner");
  W.u64(2);
  W.u64(3);
  W.endSection(Inner);
  W.endSection(Outer);
  W.u64(99); // After the outer section.

  SnapshotReader R(W.buffer());
  uint64_t V = 0;
  ASSERT_TRUE(R.enterSection("outer"));
  EXPECT_TRUE(R.u64(V));
  ASSERT_TRUE(R.enterSection("inner"));
  EXPECT_TRUE(R.u64(V));
  EXPECT_EQ(V, 2u);
  EXPECT_TRUE(R.leaveSection()); // Skips the unread 3.
  EXPECT_TRUE(R.leaveSection());
  EXPECT_TRUE(R.u64(V));
  EXPECT_EQ(V, 99u);

  SnapshotReader Wrong(W.buffer());
  EXPECT_FALSE(Wrong.enterSection("else"));
  EXPECT_TRUE(Wrong.failed());
}

TEST(Snapshot, ReaderNeverReadsPastTruncation) {
  SnapshotWriter W;
  size_t Sec = W.beginSection("sec");
  for (uint64_t I = 0; I != 16; ++I)
    W.u64(I);
  W.str("tail");
  W.endSection(Sec);
  const std::string &Full = W.buffer();
  for (size_t Cut = 0; Cut != Full.size(); ++Cut) {
    SnapshotReader R(std::string_view(Full).substr(0, Cut));
    uint64_t V = 0;
    std::string S;
    if (R.enterSection("sec")) {
      for (int I = 0; I != 16 && R.u64(V); ++I) {
      }
      R.str(S);
    }
    // Whatever happened, a truncated stream must end in failure, not
    // out-of-bounds reads (ASan guards the latter).
    EXPECT_TRUE(R.failed()) << Cut;
  }
}

TEST(Snapshot, ChecksumDetectsBitRotAndTruncation) {
  SnapshotWriter W;
  writeSnapshotHeader(W, "session");
  W.str("payload payload payload");
  appendSnapshotChecksum(W);
  std::string Good = W.buffer();
  EXPECT_TRUE(verifySnapshotChecksum(Good));

  for (size_t I = 0; I != Good.size(); I += 3) {
    std::string Bad = Good;
    Bad[I] = char(Bad[I] ^ 0x40);
    EXPECT_FALSE(verifySnapshotChecksum(Bad)) << I;
  }
  for (size_t Cut : {size_t(0), size_t(5), Good.size() - 1})
    EXPECT_FALSE(
        verifySnapshotChecksum(std::string_view(Good).substr(0, Cut)));
}

//===----------------------------------------------------------------------===//
// Store and uniqueness-set round trips
//===----------------------------------------------------------------------===//

TEST(SnapshotRoundTrip, ShardedStoreSerializeRestoreSerializeIsByteIdentical) {
  for (unsigned Shards : ShardCounts) {
    SCOPED_TRACE(Shards);
    std::unique_ptr<ShardedStore> Store = populatedStore(Shards, 100);
    std::string First = storeBytes(*Store);

    SnapshotReader R(First);
    std::unique_ptr<ShardedStore> Restored = loadShardedStore(R, {});
    ASSERT_NE(Restored, nullptr);
    EXPECT_FALSE(R.failed());

    // The restored store is the same store...
    ASSERT_EQ(Restored->size(), Store->size());
    ASSERT_EQ(Restored->shardCount(), Store->shardCount());
    EXPECT_EQ(Restored->capacity(), Store->capacity());
    for (size_t Id = 0; Id != Store->size(); ++Id) {
      EXPECT_TRUE(equalWords(Restored->cs(Id), Store->cs(Id), 2)) << Id;
      EXPECT_EQ(Restored->rowHash(Id), Store->rowHash(Id)) << Id;
      EXPECT_EQ(Restored->provenance(Id).Lhs, Store->provenance(Id).Lhs);
    }
    EXPECT_EQ(Restored->level(1), Store->level(1));
    EXPECT_EQ(Restored->level(3), Store->level(3));
    EXPECT_EQ(Restored->level(7), Store->level(7)); // Never recorded.

    // ...and its serialization reproduces the stream byte for byte.
    EXPECT_EQ(storeBytes(*Restored), First);

    // Reconstruction works across the restored segments.
    RegexManager M;
    EXPECT_NE(Restored->reconstruct(Store->size() - 1, M), nullptr);
  }
}

TEST(SnapshotRoundTrip, CsHashSetSerializeRestoreSerializeIsByteIdentical) {
  LanguageCache Cache(2, 256);
  CsHashSet Set(Cache);
  for (uint32_t I = 0; I != 150; ++I) {
    Provenance P{CsOp::Literal, '0', 0, 0};
    uint32_t Idx = Cache.append(patternCs(I).data(), P);
    Set.insert(Cache.cs(Idx), Idx);
  }
  SnapshotWriter W;
  saveCsHashSet(W, Set);
  std::string First = W.take();

  SnapshotReader R(First);
  std::unique_ptr<CsHashSet> Restored = loadCsHashSet(R, Cache);
  ASSERT_NE(Restored, nullptr);
  EXPECT_EQ(Restored->size(), Set.size());
  EXPECT_EQ(Restored->bytesUsed(), Set.bytesUsed());
  for (uint32_t I = 0; I != 150; ++I)
    EXPECT_TRUE(Restored->contains(patternCs(I).data())) << I;
  EXPECT_FALSE(Restored->contains(patternCs(1000).data()));

  SnapshotWriter W2;
  saveCsHashSet(W2, *Restored);
  EXPECT_EQ(W2.buffer(), First);
}

TEST(SnapshotRoundTrip, TruncatedAndCorruptedStoresAreRejected) {
  std::unique_ptr<ShardedStore> Store = populatedStore(3, 64);
  std::string Good = storeBytes(*Store);

  // Truncation at every prefix length: reject, never crash.
  for (size_t Cut = 0; Cut < Good.size(); Cut += 7) {
    SnapshotReader R(std::string_view(Good).substr(0, Cut));
    EXPECT_EQ(loadShardedStore(R, {}), nullptr) << Cut;
    EXPECT_TRUE(R.failed()) << Cut;
  }

  // A wrong section tag is structurally rejected.
  {
    std::string Bad = Good;
    Bad[8] = 'x'; // Inside the "store" tag text.
    SnapshotReader R(Bad);
    EXPECT_EQ(loadShardedStore(R, {}), nullptr);
  }

  // An insane shard count is rejected before any allocation.
  {
    SnapshotWriter W;
    size_t Sec = W.beginSection("store");
    W.u64(2);     // cs words
    W.u32(65000); // shard count > MaxShards
    W.u64(16);
    W.endSection(Sec);
    SnapshotReader R(W.buffer());
    EXPECT_EQ(loadShardedStore(R, {}), nullptr);
    EXPECT_TRUE(R.failed());
  }
}

//===----------------------------------------------------------------------===//
// Store truncation (the mid-level rollback primitive)
//===----------------------------------------------------------------------===//

TEST(StoreTruncate, RollsBackToABoundaryExactly) {
  for (unsigned Shards : ShardCounts) {
    SCOPED_TRACE(Shards);
    std::unique_ptr<ShardedStore> Ref = populatedStore(Shards, 60);
    std::unique_ptr<ShardedStore> Full = populatedStore(Shards, 60);

    // Record the boundary at 60 rows, then grow past it.
    std::vector<uint32_t> BoundaryRows(Shards);
    for (unsigned S = 0; S != Shards; ++S)
      BoundaryRows[S] = uint32_t(Full->shardRows(S));
    for (uint32_t I = 60; I != 90; ++I)
      Full->append(patternCs(I).data(),
                   Provenance{CsOp::Literal, '1', 0, 0});
    Full->setLevel(5, 60, 90);
    ASSERT_EQ(Full->size(), 90u);

    Full->truncate(BoundaryRows, 60);
    EXPECT_EQ(Full->size(), 60u);
    EXPECT_EQ(Full->level(5), Ref->level(5)); // Dropped with the tail.
    // Bit-for-bit the boundary store again.
    EXPECT_EQ(storeBytes(*Full), storeBytes(*Ref));

    // Appends after a truncation reuse the freed row indices.
    uint32_t Id = Full->append(patternCs(1234).data(),
                               Provenance{CsOp::Literal, '0', 0, 0});
    EXPECT_EQ(Id, 60u);
  }
}

//===----------------------------------------------------------------------===//
// Resume equivalence (the tentpole property)
//===----------------------------------------------------------------------===//

TEST(SessionResume, PauseSnapshotRestoreResumeIsBitIdenticalEverywhere) {
  SynthOptions Opts;
  for (const char *Backend : Backends) {
    for (const Spec &S : corpus()) {
      SCOPED_TRACE(std::string(Backend) + "\n" + S.toText());
      SynthResult Cold = coldRun(S, Opts, Backend);
      std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Opts);

      // Pause at every level boundary the sweep reaches.
      for (unsigned Pause = 1;; ++Pause) {
        SearchSession Session(Q, createBackend(Backend));
        for (unsigned I = 0; I != Pause &&
                             Session.state() == SessionState::Running;
             ++I)
          Session.step();
        if (Session.state() != SessionState::Running) {
          // The whole sweep fits below this pause point; the stepped
          // run must equal the uninterrupted one, and the matrix ends.
          expectEquivalent(Cold, Session.result());
          break;
        }

        // Snapshot, restore into a fresh backend, resume to the end.
        SnapshotWriter W;
        ASSERT_TRUE(Session.canSave());
        ASSERT_TRUE(Session.save(W));
        std::string Error;
        std::unique_ptr<SearchSession> Restored = SearchSession::restore(
            W.buffer(), Q, createBackend(Backend), &Error);
        ASSERT_NE(Restored, nullptr) << Error;
        expectEquivalent(Cold, Restored->run());

        // The paused original continues in memory to the same answer.
        expectEquivalent(Cold, Session.run());
      }
    }
  }
}

TEST(SessionResume, ShardCountsPreserveResumeEquivalence) {
  Spec S = introSpec();
  for (unsigned Shards : ShardCounts) {
    SCOPED_TRACE(Shards);
    SynthOptions Opts;
    Opts.Shards = Shards;
    SynthResult Cold = coldRun(S, Opts, "cpu");
    std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Opts);

    SearchSession Session(Q, createBackend("cpu"));
    for (unsigned I = 0;
         I != 4 && Session.state() == SessionState::Running; ++I)
      Session.step();
    ASSERT_EQ(Session.state(), SessionState::Running);

    SnapshotWriter W;
    ASSERT_TRUE(Session.save(W));
    std::string Error;
    std::unique_ptr<SearchSession> Restored = SearchSession::restore(
        W.buffer(), Q, createBackend("cpu"), &Error);
    ASSERT_NE(Restored, nullptr) << Error;
    expectEquivalent(Cold, Restored->run());
  }
}

TEST(SessionResume, SnapshotsRejectTheWrongQueryBackendAndCorruption) {
  std::shared_ptr<const StagedQuery> Q =
      stage(introSpec(), sigma01(), SynthOptions());
  SearchSession Session(Q, createBackend("cpu"));
  Session.step();
  SnapshotWriter W;
  ASSERT_TRUE(Session.save(W));
  std::string Error;

  // Wrong backend.
  EXPECT_EQ(SearchSession::restore(W.buffer(), Q,
                                   createBackend("cpu-parallel"), &Error),
            nullptr);
  EXPECT_NE(Error.find("backend"), std::string::npos);

  // Different spec.
  std::shared_ptr<const StagedQuery> Other =
      stage(Spec({"0"}, {"1"}), sigma01(), SynthOptions());
  EXPECT_EQ(SearchSession::restore(W.buffer(), Other, createBackend("cpu"),
                                   &Error),
            nullptr);
  EXPECT_NE(Error.find("different query"), std::string::npos);

  // Different non-budget option.
  SynthOptions NoGuide;
  NoGuide.UseGuideTable = false;
  std::shared_ptr<const StagedQuery> Divergent =
      stage(introSpec(), sigma01(), NoGuide);
  EXPECT_EQ(SearchSession::restore(W.buffer(), Divergent,
                                   createBackend("cpu"), &Error),
            nullptr);

  // Corruption anywhere in the stream is caught by the checksum.
  std::string Bytes = W.buffer();
  for (size_t I = 0; I < Bytes.size(); I += 53) {
    std::string Bad = Bytes;
    Bad[I] = char(Bad[I] ^ 0x01);
    EXPECT_EQ(SearchSession::restore(Bad, Q, createBackend("cpu"),
                                     &Error),
              nullptr)
        << I;
  }
  for (size_t Cut : {size_t(0), Bytes.size() / 2, Bytes.size() - 1})
    EXPECT_EQ(SearchSession::restore(std::string_view(Bytes).substr(0, Cut),
                                     Q, createBackend("cpu"), &Error),
              nullptr);

  // The untampered stream still restores (the loop above copied).
  EXPECT_NE(
      SearchSession::restore(Bytes, Q, createBackend("cpu"), &Error),
      nullptr)
      << Error;
}

//===----------------------------------------------------------------------===//
// Budget extension
//===----------------------------------------------------------------------===//

TEST(SessionBudget, NotFoundParksAndExtensionEqualsColdRun) {
  Spec S = introSpec();
  for (const char *Backend : Backends) {
    SCOPED_TRACE(Backend);
    SynthOptions Full;
    SynthResult Cold = coldRun(S, Full, Backend);
    ASSERT_TRUE(Cold.found());

    SynthOptions Small;
    Small.MaxCost = Cold.Cost - 1;
    std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Small);
    SearchSession Session(Q, createBackend(Backend));
    SynthResult Starved = Session.run();
    EXPECT_EQ(Starved.Status, SynthStatus::NotFound);
    ASSERT_EQ(Session.state(), SessionState::Parked);

    // A cold run at the starved budget agrees with the parked result.
    expectEquivalent(coldRun(S, Small, Backend), Starved);

    // Widening the budget in memory continues to the cold full answer.
    SynthOptions Extended = Full;
    EXPECT_TRUE(Session.canExtendTo(Extended));
    ASSERT_TRUE(Session.extendBudget(Extended.MaxCost,
                                     Extended.TimeoutSeconds));
    expectEquivalent(Cold, Session.run());
  }
}

TEST(SessionBudget, SnapshotResumeWithWiderBudgetEqualsColdRun) {
  Spec S = introSpec();
  SynthOptions Full;
  SynthResult Cold = coldRun(S, Full, "cpu");
  ASSERT_TRUE(Cold.found());

  SynthOptions Small;
  Small.MaxCost = Cold.Cost - 1;
  std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Small);
  SearchSession Session(Q, createBackend("cpu"));
  EXPECT_EQ(Session.run().Status, SynthStatus::NotFound);

  SnapshotWriter W;
  ASSERT_TRUE(Session.save(W));

  // Restore against a query staged at the *wider* budget: the session
  // key ignores budgets, so the snapshot resumes under the new ones.
  std::shared_ptr<const StagedQuery> Wider = stage(S, sigma01(), Full);
  std::string Error;
  std::unique_ptr<SearchSession> Restored = SearchSession::restore(
      W.buffer(), Wider, createBackend("cpu"), &Error);
  ASSERT_NE(Restored, nullptr) << Error;
  EXPECT_EQ(Restored->state(), SessionState::Parked);
  ASSERT_TRUE(Restored->extendBudget(Full.MaxCost, Full.TimeoutSeconds));
  expectEquivalent(Cold, Restored->run());

  // A *narrower* budget must not resume (the prefix would diverge).
  SynthOptions Narrower;
  Narrower.MaxCost = Small.MaxCost - 1;
  SearchSession Parked(Q, createBackend("cpu"));
  Parked.run();
  EXPECT_FALSE(Parked.canExtendTo(Narrower));
}

//===----------------------------------------------------------------------===//
// Mid-level timeout rollback
//===----------------------------------------------------------------------===//

namespace {

/// Wraps a real backend and reports the chosen level as timed out
/// (once), after the level ran: from the session's point of view a
/// deadline struck mid-level with the maximum amount of partial state
/// to roll back.
template <typename BaseBackend>
class TimeoutOnce : public BaseBackend {
public:
  explicit TimeoutOnce(uint64_t TriggerCost) : TriggerCost(TriggerCost) {}

  LevelOutcome runLevel(SearchContext &Ctx, uint64_t LevelCost,
                        LevelTasks &Tasks) override {
    LevelOutcome Out = BaseBackend::runLevel(Ctx, LevelCost, Tasks);
    if (!Fired && LevelCost == TriggerCost && !Out.FoundSatisfier) {
      Fired = true;
      Out.TimedOut = true;
    }
    return Out;
  }

private:
  uint64_t TriggerCost;
  bool Fired = false;
};

} // namespace

TEST(SessionRollback, MidLevelTimeoutResumesBitIdentically) {
  Spec S = introSpec();
  SynthOptions Opts;
  for (uint64_t Trigger : {uint64_t(1), uint64_t(3), uint64_t(5)}) {
    SCOPED_TRACE(Trigger);
    // Sequential backend.
    {
      SynthResult Cold = coldRun(S, Opts, "cpu");
      std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Opts);
      SearchSession Session(
          Q, std::make_unique<TimeoutOnce<CpuBackend>>(Trigger));
      SynthResult Timed = Session.run();
      ASSERT_EQ(Timed.Status, SynthStatus::Timeout);
      ASSERT_EQ(Session.state(), SessionState::Parked);

      // In-memory resume rolls the partial level back and re-runs it.
      ASSERT_TRUE(Session.extendBudget(0, 0));
      expectEquivalent(Cold, Session.run());
    }
    // Batched pipeline (thread-pool kernels).
    {
      SynthResult Cold = coldRun(S, Opts, "cpu-parallel");
      std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Opts);
      SearchSession Session(
          Q,
          std::make_unique<TimeoutOnce<CpuParallelBackend>>(Trigger));
      ASSERT_EQ(Session.run().Status, SynthStatus::Timeout);
      ASSERT_EQ(Session.state(), SessionState::Parked);

      // Through a snapshot: save() performs the rollback, and the
      // stream restores into a *plain* backend of the same kind.
      SnapshotWriter W;
      ASSERT_TRUE(Session.save(W));
      std::string Error;
      std::unique_ptr<SearchSession> Restored = SearchSession::restore(
          W.buffer(), Q, createBackend("cpu-parallel"), &Error);
      ASSERT_NE(Restored, nullptr) << Error;
      ASSERT_TRUE(Restored->extendBudget(0, 0));
      expectEquivalent(Cold, Restored->run());
    }
  }
}

//===----------------------------------------------------------------------===//
// Service resume cache
//===----------------------------------------------------------------------===//

TEST(ServiceSessions, BudgetRetryIsServedFromAParkedSession) {
  using paresy::service::ServiceStats;
  using paresy::service::SynthService;
  Spec S = introSpec();
  SynthOptions Full;
  SynthResult Cold = coldRun(S, Full, "cpu");
  ASSERT_TRUE(Cold.found());

  SynthService Service{{}};
  SynthOptions Small;
  Small.MaxCost = Cold.Cost - 1;
  SynthResult Starved = Service.synthesize(S, sigma01(), Small);
  EXPECT_EQ(Starved.Status, SynthStatus::NotFound);
  ServiceStats St = Service.stats();
  EXPECT_EQ(St.SessionsParked, 1u);
  EXPECT_EQ(St.SessionsResumed, 0u);
  EXPECT_GT(St.SessionBytes, 0u);

  // The budget-extended retry warm-starts from the parked session and
  // still equals a cold run at the full budget.
  SynthResult Retry = Service.synthesize(S, sigma01(), Full);
  expectEquivalent(Cold, Retry);
  St = Service.stats();
  EXPECT_EQ(St.SessionsResumed, 1u);
  // Resumed to completion - and the solved session's journaled sweep
  // state is kept as a spec-delta donor (engine/DeltaStage.h), so its
  // bytes stay pinned and the park counter ticks a second time.
  EXPECT_GT(St.SessionBytes, 0u);
  EXPECT_EQ(St.SessionsParked, 2u);
  EXPECT_EQ(St.Searches, 2u);

  // The result entered the cache under the *new* budget's key.
  SynthResult Again = Service.synthesize(S, sigma01(), Full);
  EXPECT_EQ(Service.stats().Hits, 1u);
  expectEquivalent(Cold, Again);
}

TEST(ServiceSessions, TimeoutRetryWithWiderDeadlineWarmStarts) {
  using paresy::service::SynthService;
  Spec S = introSpec();
  SynthResult Cold = coldRun(S, SynthOptions(), "cpu");

  SynthService Service{{}};
  SynthOptions Hopeless;
  Hopeless.TimeoutSeconds = 1e-9;
  EXPECT_EQ(Service.synthesize(S, sigma01(), Hopeless).Status,
            SynthStatus::Timeout);
  EXPECT_EQ(Service.stats().SessionsParked, 1u);

  // An *equal* deadline must not warm-start: the parked clock already
  // exceeds it, so resuming would replay the first run's Timeout
  // instead of genuinely re-trying (Timeout results are deliberately
  // never replayed - neither from the result cache nor from a parked
  // clock).
  EXPECT_EQ(Service.synthesize(S, sigma01(), Hopeless).Status,
            SynthStatus::Timeout);
  EXPECT_EQ(Service.stats().SessionsResumed, 0u);

  // Lifting the deadline entirely (0 = none) is a strict widening.
  SynthOptions Unlimited;
  expectEquivalent(Cold, Service.synthesize(S, sigma01(), Unlimited));
  EXPECT_EQ(Service.stats().SessionsResumed, 1u);
}

TEST(ServiceSessions, ParkRespectsCountAndByteBudgets) {
  using paresy::service::ServiceOptions;
  using paresy::service::SynthService;
  SynthOptions Small;
  Small.MaxCost = 2;
  std::vector<Spec> Specs = corpus();

  // Capacity 1: the second park expires the first.
  ServiceOptions One;
  One.SessionParkCapacity = 1;
  SynthService Tight(std::move(One));
  EXPECT_EQ(Tight.synthesize(Specs[0], sigma01(), Small).Status,
            SynthStatus::NotFound);
  EXPECT_EQ(Tight.synthesize(Specs[1], sigma01(), Small).Status,
            SynthStatus::NotFound);
  EXPECT_EQ(Tight.stats().SessionsParked, 2u);
  EXPECT_EQ(Tight.stats().SessionsExpired, 1u);

  // A one-byte budget parks nothing.
  ServiceOptions Tiny;
  Tiny.SessionParkBytes = 1;
  SynthService NoBytes(std::move(Tiny));
  NoBytes.synthesize(Specs[0], sigma01(), Small);
  EXPECT_EQ(NoBytes.stats().SessionsParked, 0u);
  EXPECT_EQ(NoBytes.stats().SessionBytes, 0u);

  // Parking disabled: retries run cold, results stay correct.
  ServiceOptions Off;
  Off.SessionParkCapacity = 0;
  SynthService Disabled(std::move(Off));
  Disabled.synthesize(Specs[0], sigma01(), Small);
  SynthResult Retry = Disabled.synthesize(Specs[0], sigma01(),
                                          SynthOptions());
  EXPECT_EQ(Disabled.stats().SessionsParked, 0u);
  EXPECT_EQ(Disabled.stats().SessionsResumed, 0u);
  expectEquivalent(coldRun(Specs[0], SynthOptions(), "cpu"), Retry);
}

//===----------------------------------------------------------------------===//
// Restage sharing (cheap resumes depend on it)
//===----------------------------------------------------------------------===//

TEST(RestageSharing, BudgetAndSweepOnlyChangesShareArtifactsAlways) {
  std::shared_ptr<const StagedQuery> Base =
      stage(introSpec(), sigma01(), SynthOptions());
  ASSERT_NE(Base->universe(), nullptr);
  ASSERT_NE(Base->guideTable(), nullptr);

  auto Mutated = [](auto Mutate) {
    SynthOptions O;
    Mutate(O);
    return O;
  };
  const SynthOptions Variants[] = {
      Mutated([](SynthOptions &O) { O.MaxCost = 7; }),
      Mutated([](SynthOptions &O) { O.TimeoutSeconds = 42; }),
      Mutated([](SynthOptions &O) { O.MemoryLimitBytes = 1 << 20; }),
      Mutated([](SynthOptions &O) { O.Shards = 3; }),
      Mutated([](SynthOptions &O) { O.AllowedError = 0.2; }),
      Mutated([](SynthOptions &O) { O.EnableOnTheFly = false; }),
      Mutated([](SynthOptions &O) { O.SeedEpsilon = false; }),
      Mutated([](SynthOptions &O) { O.UniquenessCheck = false; }),
      Mutated([](SynthOptions &O) { O.Cost = CostFn(2, 1, 3, 1, 1); }),
  };
  for (const SynthOptions &NewOpts : Variants) {
    std::shared_ptr<const StagedQuery> Re = restage(*Base, NewOpts);
    // Pointer identity: the artifacts are shared, not rebuilt.
    EXPECT_EQ(Re->universe().get(), Base->universe().get());
    EXPECT_EQ(Re->guideTable().get(), Base->guideTable().get());
  }

  // Turning the guide table off keeps the universe; back on reuses
  // the staged table.
  SynthOptions NoGuide;
  NoGuide.UseGuideTable = false;
  std::shared_ptr<const StagedQuery> Off = restage(*Base, NoGuide);
  EXPECT_EQ(Off->universe().get(), Base->universe().get());
  EXPECT_EQ(Off->guideTable(), nullptr);
  std::shared_ptr<const StagedQuery> On = restage(*Off, SynthOptions());
  EXPECT_EQ(On->universe().get(), Base->universe().get());
  EXPECT_NE(On->guideTable(), nullptr);
}

TEST(RestageSharing, PaddingFlipSharesWhenPaddingIsANoOp) {
  // ic({"", "0"}) has 2 words: already a power of two, so the padded
  // and unpadded geometries coincide and a Pad flip shares.
  std::shared_ptr<const StagedQuery> Pow2 =
      stage(Spec({"0"}, {""}), sigma01(), SynthOptions());
  ASSERT_EQ(Pow2->universe()->size(), 2u);
  SynthOptions NoPad;
  NoPad.PadToPowerOfTwo = false;
  std::shared_ptr<const StagedQuery> Shared = restage(*Pow2, NoPad);
  EXPECT_EQ(Shared->universe().get(), Pow2->universe().get());
  EXPECT_EQ(Shared->guideTable().get(), Pow2->guideTable().get());

  // ic of the intro spec is not a power of two: the flip must
  // re-stage (the geometries genuinely differ) - in both directions.
  // The unpadded direction is the trap: an unpadded universe always
  // has csBits == size, which says nothing about padding being a
  // no-op.
  std::shared_ptr<const StagedQuery> Odd =
      stage(introSpec(), sigma01(), SynthOptions());
  ASSERT_NE(Odd->universe()->csBits(), Odd->universe()->size());
  std::shared_ptr<const StagedQuery> Restaged = restage(*Odd, NoPad);
  EXPECT_NE(Restaged->universe().get(), Odd->universe().get());
  EXPECT_EQ(Restaged->universe()->csBits(), Restaged->universe()->size());

  std::shared_ptr<const StagedQuery> OddUnpadded =
      stage(introSpec(), sigma01(), NoPad);
  std::shared_ptr<const StagedQuery> BackToPadded =
      restage(*OddUnpadded, SynthOptions());
  EXPECT_NE(BackToPadded->universe().get(), OddUnpadded->universe().get());
  EXPECT_NE(BackToPadded->universe()->csBits(),
            BackToPadded->universe()->size());
}

//===----------------------------------------------------------------------===//
// Session fingerprints (v3)
//===----------------------------------------------------------------------===//

TEST(SessionFingerprint, ExcludesBudgetsButKeepsEverythingElse) {
  Spec S = introSpec();
  SynthOptions Base;
  Fingerprint Ref = fingerprintSession(S, sigma01(), Base);

  // Budget-only changes keep the session identity...
  SynthOptions Budget = Base;
  Budget.MaxCost = 99;
  Budget.TimeoutSeconds = 3.5;
  EXPECT_EQ(Ref, fingerprintSession(S, sigma01(), Budget));
  // ...but change the result identity.
  EXPECT_NE(fingerprintQuery(S, sigma01(), Base),
            fingerprintQuery(S, sigma01(), Budget));

  // Any sweep-shaping change breaks the session identity.
  SynthOptions OtherCost = Base;
  OtherCost.Cost = CostFn(2, 1, 3, 1, 1);
  EXPECT_NE(Ref, fingerprintSession(S, sigma01(), OtherCost));
  SynthOptions OtherShards = Base;
  OtherShards.Shards = 5;
  EXPECT_NE(Ref, fingerprintSession(S, sigma01(), OtherShards));
  SynthOptions OtherError = Base;
  OtherError.AllowedError = 0.3;
  EXPECT_NE(Ref, fingerprintSession(S, sigma01(), OtherError));

  // Example order still never splits identities.
  Spec Shuffled({"101", "10", "1000", "100", "1011", "1010", "1001"},
                {"11", "", "1", "0", "010", "00"});
  EXPECT_EQ(Ref, fingerprintSession(Shuffled, sigma01(), Base));
}
