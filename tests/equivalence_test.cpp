//===- tests/equivalence_test.cpp - Language equivalence checker tests --------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "regex/Equivalence.h"

#include "regex/Matcher.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace paresy;

namespace {

const std::vector<char> Binary = {'0', '1'};

const Regex *parse(RegexManager &M, const char *Text) {
  ParseResult R = parseRegex(M, Text);
  EXPECT_TRUE(R) << Text << ": " << R.Error;
  return R.Re;
}

const Regex *randomRegex(RegexManager &M, Rng &R, int Budget) {
  if (Budget <= 1) {
    switch (R.below(4)) {
    case 0:
      return M.literal('0');
    case 1:
      return M.literal('1');
    case 2:
      return M.epsilon();
    default:
      return M.empty();
    }
  }
  switch (R.below(4)) {
  case 0:
    return M.question(randomRegex(M, R, Budget - 1));
  case 1:
    return M.star(randomRegex(M, R, Budget - 1));
  case 2: {
    int Left = 1 + int(R.below(uint64_t(Budget - 1)));
    return M.concat(randomRegex(M, R, Left),
                    randomRegex(M, R, Budget - Left));
  }
  default: {
    int Left = 1 + int(R.below(uint64_t(Budget - 1)));
    return M.alt(randomRegex(M, R, Left),
                 randomRegex(M, R, Budget - Left));
  }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Known equivalences and inequivalences
//===----------------------------------------------------------------------===//

struct EquivCase {
  const char *A;
  const char *B;
  bool Equivalent;
};

class EquivalenceCases : public ::testing::TestWithParam<EquivCase> {};

TEST_P(EquivalenceCases, DecidesCorrectly) {
  const EquivCase &Case = GetParam();
  RegexManager M;
  EquivalenceResult R =
      checkEquivalent(M, parse(M, Case.A), parse(M, Case.B), Binary);
  EXPECT_EQ(R.Equivalent, Case.Equivalent)
      << Case.A << " vs " << Case.B << " witness '" << R.Witness << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Axioms, EquivalenceCases,
    ::testing::Values(
        // The paper's Def 2.8 examples: r+r == r, r** == r*.
        EquivCase{"0+0", "0", true},
        EquivCase{"0**", "0*", true},
        // r? == # + r.
        EquivCase{"0?", "#+0", true},
        // Observational equivalence example from Sec. 5.1:
        // r* == # + r*r.
        EquivCase{"1*", "#+1*1", true},
        // Associativity/commutativity/distribution.
        EquivCase{"(0+1)+1", "0+(1+1)", true},
        EquivCase{"0+1", "1+0", true},
        EquivCase{"0(1+1*)", "01+01*", true},
        // Kleene algebra: (a+b)* == (a*b*)*.
        EquivCase{"(0+1)*", "(0*1*)*", true},
        // Zero/one laws.
        EquivCase{"@0", "@", true},
        EquivCase{"#0", "0", true},
        EquivCase{"@*", "#", true},
        EquivCase{"@?", "#", true},
        // Inequivalences.
        EquivCase{"0", "1", false},
        EquivCase{"0*", "0?", false},
        EquivCase{"01", "10", false},
        EquivCase{"(01)*", "0*1*", false},
        EquivCase{"0+1", "0", false},
        EquivCase{"#", "@", false}));

TEST(Equivalence, WitnessIsShortestDisagreement) {
  RegexManager M;
  // 0* vs 0?: first disagreement at "00".
  EquivalenceResult R =
      checkEquivalent(M, parse(M, "0*"), parse(M, "0?"), Binary);
  ASSERT_FALSE(R.Equivalent);
  EXPECT_EQ(R.Witness, "00");

  // The intro's overfitting example: the enumerated union differs
  // from 10(0+1)* first on a longer string.
  EquivalenceResult Overfit = checkEquivalent(
      M, parse(M, "10+101+100+1010+1011+1000+1001"),
      parse(M, "10(0+1)*"), Binary);
  ASSERT_FALSE(Overfit.Equivalent);
  EXPECT_EQ(Overfit.Witness.size(), 5u);
  EXPECT_EQ(Overfit.Witness.substr(0, 2), "10");
}

TEST(Equivalence, WitnessDisagreesUnderTheMatchers) {
  RegexManager M;
  const Regex *A = parse(M, "(01)*");
  const Regex *B = parse(M, "0*1*");
  EquivalenceResult R = checkEquivalent(M, A, B, Binary);
  ASSERT_FALSE(R.Equivalent);
  DerivativeMatcher D(M);
  EXPECT_NE(D.matches(A, R.Witness), D.matches(B, R.Witness));
}

TEST(Equivalence, PaperFootnoteNo25) {
  // Footnote 1: 0+((1+00)(0+1))* meets AlphaRegex's no25 examples but
  // accepts 1111, i.e. it is NOT equivalent to a "at most one pair of
  // consecutive 1s" expression.
  RegexManager M;
  const Regex *Synthesized = parse(M, "0+((1+00)(0+1))*");
  DerivativeMatcher D(M);
  EXPECT_TRUE(D.matches(Synthesized, "1111"));
  EquivalenceResult R = checkEquivalent(
      M, Synthesized, parse(M, "(0+10)*(11?)?(0+01)*"), Binary);
  EXPECT_FALSE(R.Equivalent);
}

//===----------------------------------------------------------------------===//
// Properties over random expressions
//===----------------------------------------------------------------------===//

class EquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceProperty, AlgebraicIdentitiesHold) {
  RegexManager M;
  Rng R(GetParam());
  for (int I = 0; I != 20; ++I) {
    const Regex *Re = randomRegex(M, R, 8);
    SCOPED_TRACE(toString(Re));
    // r == r + r.
    EXPECT_TRUE(areEquivalent(M, Re, M.alt(Re, Re), Binary));
    // r* == (r*)* == (r?)*.
    const Regex *Star = M.star(Re);
    EXPECT_TRUE(areEquivalent(M, Star, M.star(Star), Binary));
    EXPECT_TRUE(areEquivalent(M, Star, M.star(M.question(Re)), Binary));
    // r? == # + r.
    EXPECT_TRUE(areEquivalent(M, M.question(Re),
                              M.alt(M.epsilon(), Re), Binary));
    // #r == r == r#.
    EXPECT_TRUE(areEquivalent(M, Re, M.concat(M.epsilon(), Re), Binary));
    EXPECT_TRUE(areEquivalent(M, Re, M.concat(Re, M.epsilon()), Binary));
    // @r == @.
    EXPECT_TRUE(
        areEquivalent(M, M.empty(), M.concat(M.empty(), Re), Binary));
  }
}

TEST_P(EquivalenceProperty, AgreesWithBoundedEnumeration) {
  // For random pairs, the verdict must match brute-force comparison
  // on all strings up to length 7 whenever a witness is that short;
  // and when equivalent, the matchers agree everywhere we can check.
  RegexManager M;
  Rng R(GetParam() + 1000);
  std::vector<std::string> Words{""};
  for (size_t Begin = 0, Len = 1; Len <= 7; ++Len) {
    size_t End = Words.size();
    for (size_t I = Begin; I != End; ++I) {
      Words.push_back(Words[I] + "0");
      Words.push_back(Words[I] + "1");
    }
    Begin = End;
  }
  DerivativeMatcher D(M);
  for (int I = 0; I != 10; ++I) {
    const Regex *A = randomRegex(M, R, 7);
    const Regex *B = randomRegex(M, R, 7);
    EquivalenceResult Verdict = checkEquivalent(M, A, B, Binary);
    bool BoundedEqual = true;
    for (const std::string &W : Words)
      if (D.matches(A, W) != D.matches(B, W)) {
        BoundedEqual = false;
        break;
      }
    if (Verdict.Equivalent)
      EXPECT_TRUE(BoundedEqual)
          << toString(A) << " vs " << toString(B);
    else if (Verdict.Witness.size() <= 7)
      EXPECT_FALSE(BoundedEqual)
          << toString(A) << " vs " << toString(B) << " witness '"
          << Verdict.Witness << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceProperty,
                         ::testing::Range<uint64_t>(1, 9));
