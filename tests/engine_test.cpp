//===- tests/engine_test.cpp - Engine, backends, registry, batch --------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// DESIGN.md Sec. 4 invariants, in the style of percy's cross-
/// synthesizer equivalence testing: every registered backend, run over
/// the synthesizer test corpus, returns the same expression, the same
/// minimal cost, the same status and the same candidate counts as the
/// sequential reference; the parallel backend and the batch API are
/// deterministic in the worker count.
///
//===----------------------------------------------------------------------===//

#include "engine/Backend.h"
#include "engine/BackendRegistry.h"
#include "engine/Batch.h"
#include "engine/CpuBackend.h"
#include "engine/CpuParallelBackend.h"
#include "engine/SearchDriver.h"

#include "benchgen/Generators.h"
#include "core/Synthesizer.h"
#include "regex/Matcher.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace paresy;
using namespace paresy::engine;

namespace {

Spec introSpec() {
  // Specification (1) from the paper's introduction.
  return Spec({"10", "101", "100", "1010", "1011", "1000", "1001"},
              {"", "0", "1", "00", "11", "010"});
}

Spec example36Spec() {
  return Spec({"1", "011", "1011", "11011"}, {"", "10", "101", "0011"});
}

/// The Sec. 5.2 example specification (Table 1 row 1).
Spec errorSectionSpec() {
  return Spec({"00", "1101", "0001", "0111", "001", "1", "10", "1100",
               "111", "1010"},
              {"", "0", "0000", "0011", "01", "010", "011", "100",
               "1000", "1001", "11", "1110"});
}

/// The corpus every backend must agree on (no timeout/OOM cases:
/// those statuses depend on wall time or backend memory policy, not
/// on the search semantics).
std::vector<Spec> knownCorpus() {
  return {introSpec(),
          example36Spec(),
          Spec({"0", "00", "000"}, {}),
          Spec({"1"}, {"", "0", "11", "10"}),
          Spec({"", "0", "00"}, {"1", "01", "10"}),
          Spec({"10"}, {"", "0", "1"})};
}

/// Runs \p S on every registered backend and checks each against the
/// sequential reference.
void expectAllBackendsAgree(const Spec &S, const Alphabet &Sigma,
                            const SynthOptions &Opts) {
  SynthResult Ref = synthesize(S, Sigma, Opts);
  for (const std::string &Name : backendNames()) {
    SCOPED_TRACE("backend " + Name);
    SynthResult R = synthesizeWith(Name, S, Sigma, Opts);
    ASSERT_EQ(Ref.Status, R.Status) << statusName(R.Status);
    EXPECT_EQ(Ref.Regex, R.Regex);
    EXPECT_EQ(Ref.Cost, R.Cost);
    EXPECT_EQ(Ref.Stats.CandidatesGenerated, R.Stats.CandidatesGenerated);
    EXPECT_EQ(Ref.Stats.UniqueLanguages, R.Stats.UniqueLanguages);
    EXPECT_EQ(Ref.Stats.UniverseSize, R.Stats.UniverseSize);
    EXPECT_EQ(Ref.Stats.LastCompletedCost, R.Stats.LastCompletedCost);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(BackendRegistry, ShipsThreeBackends) {
  std::vector<std::string> Names = backendNames();
  for (const char *Required : {"cpu", "cpu-parallel", "gpusim"})
    EXPECT_TRUE(std::find(Names.begin(), Names.end(), Required) !=
                Names.end())
        << Required;
  EXPECT_TRUE(std::is_sorted(Names.begin(), Names.end()));
}

TEST(BackendRegistry, CreateBackendReportsItsName) {
  for (const std::string &Name : backendNames()) {
    std::unique_ptr<Backend> B = createBackend(Name);
    ASSERT_NE(B, nullptr) << Name;
    EXPECT_EQ(B->name(), Name);
  }
}

TEST(BackendRegistry, UnknownNamesAreRejected) {
  EXPECT_EQ(createBackend("warp9"), nullptr);
  SynthResult R = synthesizeWith("warp9", introSpec(), Alphabet::of("01"),
                                 SynthOptions());
  EXPECT_EQ(R.Status, SynthStatus::InvalidInput);
  EXPECT_NE(R.Message.find("warp9"), std::string::npos);
}

TEST(BackendRegistry, DuplicateRegistrationFails) {
  EXPECT_FALSE(registerBackend(
      "cpu", [](const BackendConfig &) -> std::unique_ptr<Backend> {
        return std::make_unique<CpuBackend>();
      }));
}

TEST(BackendRegistry, OutOfTreeBackendsPlugIn) {
  // Register once per process; later invocations observe the earlier
  // registration and must fail.
  static bool First = registerBackend(
      "cpu-clone", [](const BackendConfig &) -> std::unique_ptr<Backend> {
        return std::make_unique<CpuBackend>();
      });
  EXPECT_TRUE(First);
  SynthResult Clone = synthesizeWith("cpu-clone", introSpec(),
                                     Alphabet::of("01"), SynthOptions());
  SynthResult Ref = synthesize(introSpec(), Alphabet::of("01"),
                               SynthOptions());
  ASSERT_TRUE(Clone.found());
  EXPECT_EQ(Clone.Regex, Ref.Regex);
}

//===----------------------------------------------------------------------===//
// Cross-backend equivalence (percy-style)
//===----------------------------------------------------------------------===//

TEST(BackendEquivalence, KnownSpecs) {
  for (const Spec &S : knownCorpus()) {
    SCOPED_TRACE(S.toText());
    expectAllBackendsAgree(S, Alphabet::of("01"), SynthOptions());
  }
}

TEST(BackendEquivalence, BoundedSweepAgreesOnNotFound) {
  // The Sec. 5.2 spec is heavy in precise mode; a cost cap keeps the
  // sweep bounded while still exercising the NotFound path and the
  // per-level counts on a spec with a multi-thousand-candidate level.
  SynthOptions Opts;
  Opts.MaxCost = 8;
  expectAllBackendsAgree(errorSectionSpec(), Alphabet::of("01"), Opts);
}

TEST(BackendEquivalence, LargerAlphabet) {
  expectAllBackendsAgree(Spec({"ab", "abc"}, {"a", "b", "c", "ba"}),
                         Alphabet::of("abc"), SynthOptions());
}

TEST(BackendEquivalence, AcrossCostFunctions) {
  Spec S({"1", "011", "1011"}, {"", "10", "101"});
  for (const CostFn &Cost : paperCostFunctions()) {
    SCOPED_TRACE(Cost.name());
    SynthOptions Opts;
    Opts.Cost = Cost;
    expectAllBackendsAgree(S, Alphabet::of("01"), Opts);
  }
}

TEST(BackendEquivalence, ErrorMode) {
  for (double Error : {0.1, 0.25, 0.5}) {
    SCOPED_TRACE(Error);
    SynthOptions Opts;
    Opts.AllowedError = Error;
    expectAllBackendsAgree(errorSectionSpec(), Alphabet::of("01"), Opts);
  }
}

TEST(BackendEquivalence, OptionAblations) {
  // Every backend must honour the ablation flags identically - the
  // pre-engine GPU implementation notably ignored UseGuideTable.
  Spec S = example36Spec();
  for (int Ablation = 0; Ablation != 4; ++Ablation) {
    SCOPED_TRACE(Ablation);
    SynthOptions Opts;
    switch (Ablation) {
    case 0:
      Opts.UseGuideTable = false;
      break;
    case 1:
      Opts.PadToPowerOfTwo = false;
      break;
    case 2:
      Opts.SeedEpsilon = false;
      break;
    case 3:
      Opts.UniquenessCheck = false;
      break;
    }
    expectAllBackendsAgree(S, Alphabet::of("01"), Opts);
  }
}

TEST(BackendEquivalence, TrivialAndInvalidInputs) {
  SynthOptions Opts;
  expectAllBackendsAgree(Spec({}, {"0", "1"}), Alphabet::of("01"), Opts);
  expectAllBackendsAgree(Spec({""}, {"0", "10"}), Alphabet::of("01"), Opts);
  expectAllBackendsAgree(Spec({"0"}, {"0"}), Alphabet::of("01"), Opts);
  SynthOptions BadCost;
  BadCost.Cost = CostFn(0, 1, 1, 1, 1);
  expectAllBackendsAgree(introSpec(), Alphabet::of("01"), BadCost);
}

class BackendEquivalenceRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendEquivalenceRandom, RandomSpecs) {
  benchgen::GenParams Params;
  Params.MaxLen = 4;
  Params.NumPos = 4;
  Params.NumNeg = 4;
  Params.Seed = GetParam();
  for (benchgen::BenchType Type :
       {benchgen::BenchType::Type1, benchgen::BenchType::Type2}) {
    benchgen::GeneratedBenchmark B;
    std::string Error;
    ASSERT_TRUE(benchgen::generate(Type, Params, B, &Error)) << Error;
    SCOPED_TRACE(B.Name);
    expectAllBackendsAgree(B.Examples, Params.Sigma, SynthOptions());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalenceRandom,
                         ::testing::Range<uint64_t>(1, 21));

//===----------------------------------------------------------------------===//
// Worker-count determinism
//===----------------------------------------------------------------------===//

TEST(CpuParallelBackendTest, DeterministicAcrossWorkerCounts) {
  Spec S = introSpec();
  SynthOptions Opts;
  CpuParallelBackend Reference(CpuParallelBackend::Inline);
  SynthResult Ref = runSearch(S, Alphabet::of("01"), Opts, Reference);
  ASSERT_TRUE(Ref.found());
  for (unsigned Workers : {1u, 2u, 4u}) {
    SCOPED_TRACE(Workers);
    CpuParallelBackend B(Workers);
    SynthResult R = runSearch(S, Alphabet::of("01"), Opts, B);
    ASSERT_EQ(Ref.Status, R.Status);
    EXPECT_EQ(Ref.Regex, R.Regex);
    EXPECT_EQ(Ref.Cost, R.Cost);
    EXPECT_EQ(Ref.Stats.CandidatesGenerated, R.Stats.CandidatesGenerated);
    EXPECT_EQ(Ref.Stats.UniqueLanguages, R.Stats.UniqueLanguages);
    EXPECT_EQ(Ref.Stats.CacheEntries, R.Stats.CacheEntries);
  }
}

TEST(CpuParallelBackendTest, FoundAnswersSurviveMemoryPressure) {
  // Tiny budgets need not fill at the same level as the sequential
  // backend (memory is partitioned differently), but a Found answer
  // must still be the same minimal cost - the completeness-horizon
  // guarantee is backend-agnostic.
  Spec S({"1", "011", "1011"}, {"", "10", "101"});
  SynthOptions Unlimited;
  SynthResult Reference = synthesize(S, Alphabet::of("01"), Unlimited);
  ASSERT_TRUE(Reference.found());
  for (uint64_t Budget : {40000u, 10000u, 3000u, 1000u, 1u}) {
    SCOPED_TRACE(Budget);
    SynthOptions Tight;
    Tight.MemoryLimitBytes = Budget;
    SynthResult R = synthesizeWith("cpu-parallel", S, Alphabet::of("01"),
                                   Tight);
    if (R.found())
      EXPECT_EQ(R.Cost, Reference.Cost);
    else
      EXPECT_EQ(R.Status, SynthStatus::OutOfMemory);
  }
}

//===----------------------------------------------------------------------===//
// Batch synthesis
//===----------------------------------------------------------------------===//

namespace {

std::vector<Spec> batchCorpus() {
  std::vector<Spec> Specs = knownCorpus();
  Specs.push_back(Spec({}, {"0"}));    // Trivial '@'.
  Specs.push_back(Spec({"0"}, {"0"})); // InvalidInput.
  return Specs;
}

} // namespace

TEST(SynthesizeBatch, MatchesIndividualRuns) {
  std::vector<Spec> Specs = batchCorpus();
  SynthOptions Opts;
  std::vector<SynthResult> Results =
      synthesizeBatch(Specs, Alphabet::of("01"), Opts);
  ASSERT_EQ(Results.size(), Specs.size());
  for (size_t I = 0; I != Specs.size(); ++I) {
    SCOPED_TRACE(I);
    SynthResult Ref = synthesize(Specs[I], Alphabet::of("01"), Opts);
    EXPECT_EQ(Ref.Status, Results[I].Status);
    EXPECT_EQ(Ref.Regex, Results[I].Regex);
    EXPECT_EQ(Ref.Cost, Results[I].Cost);
    EXPECT_EQ(Ref.Stats.CandidatesGenerated,
              Results[I].Stats.CandidatesGenerated);
  }
}

TEST(SynthesizeBatch, DeterministicAcrossWorkerCounts) {
  std::vector<Spec> Specs = batchCorpus();
  SynthOptions Opts;
  BatchOptions Serial;
  std::vector<SynthResult> Ref =
      synthesizeBatch(Specs, Alphabet::of("01"), Opts, Serial);
  for (unsigned Workers : {1u, 2u, 4u, 7u}) {
    SCOPED_TRACE(Workers);
    BatchOptions Parallel;
    Parallel.Workers = Workers;
    std::vector<SynthResult> R =
        synthesizeBatch(Specs, Alphabet::of("01"), Opts, Parallel);
    ASSERT_EQ(Ref.size(), R.size());
    for (size_t I = 0; I != Ref.size(); ++I) {
      SCOPED_TRACE(I);
      EXPECT_EQ(Ref[I].Status, R[I].Status);
      EXPECT_EQ(Ref[I].Regex, R[I].Regex);
      EXPECT_EQ(Ref[I].Cost, R[I].Cost);
      EXPECT_EQ(Ref[I].Stats.CandidatesGenerated,
                R[I].Stats.CandidatesGenerated);
      EXPECT_EQ(Ref[I].Stats.UniqueLanguages,
                R[I].Stats.UniqueLanguages);
    }
  }
}

TEST(SynthesizeBatch, RunsOnEveryBackend) {
  std::vector<Spec> Specs = {introSpec(), example36Spec()};
  SynthOptions Opts;
  for (const std::string &Name : backendNames()) {
    SCOPED_TRACE(Name);
    BatchOptions Batch;
    Batch.Backend = Name;
    Batch.Workers = 2;
    std::vector<SynthResult> Results =
        synthesizeBatch(Specs, Alphabet::of("01"), Opts, Batch);
    ASSERT_EQ(Results.size(), Specs.size());
    for (size_t I = 0; I != Specs.size(); ++I) {
      SynthResult Ref = synthesize(Specs[I], Alphabet::of("01"), Opts);
      EXPECT_EQ(Ref.Regex, Results[I].Regex) << I;
      EXPECT_EQ(Ref.Cost, Results[I].Cost) << I;
    }
  }
}

TEST(SynthesizeBatch, UnknownBackendYieldsInvalidInputPerSpec) {
  BatchOptions Batch;
  Batch.Backend = "warp9";
  std::vector<SynthResult> Results = synthesizeBatch(
      {introSpec(), example36Spec()}, Alphabet::of("01"), SynthOptions(),
      Batch);
  ASSERT_EQ(Results.size(), 2u);
  for (const SynthResult &R : Results) {
    EXPECT_EQ(R.Status, SynthStatus::InvalidInput);
    EXPECT_NE(R.Message.find("warp9"), std::string::npos) << R.Message;
  }
}

TEST(SynthesizeBatch, EmptyBatchIsEmpty) {
  // Both with and without a worker pool to stand up and tear down.
  EXPECT_TRUE(
      synthesizeBatch({}, Alphabet::of("01"), SynthOptions()).empty());
  BatchOptions Parallel;
  Parallel.Workers = 4;
  EXPECT_TRUE(synthesizeBatch({}, Alphabet::of("01"), SynthOptions(),
                              Parallel)
                  .empty());
}

TEST(SynthesizeBatch, WorkersFarExceedingSpecCount) {
  // 32 workers, 3 specs: the surplus workers must start, idle and shut
  // down cleanly, and results must still match the serial reference.
  std::vector<Spec> Specs = {introSpec(), example36Spec(),
                             Spec({"10"}, {"", "0", "1"})};
  SynthOptions Opts;
  BatchOptions Oversized;
  Oversized.Workers = 32;
  std::vector<SynthResult> Results =
      synthesizeBatch(Specs, Alphabet::of("01"), Opts, Oversized);
  ASSERT_EQ(Results.size(), Specs.size());
  for (size_t I = 0; I != Specs.size(); ++I) {
    SCOPED_TRACE(I);
    SynthResult Ref = synthesize(Specs[I], Alphabet::of("01"), Opts);
    EXPECT_EQ(Ref.Status, Results[I].Status);
    EXPECT_EQ(Ref.Regex, Results[I].Regex);
    EXPECT_EQ(Ref.Cost, Results[I].Cost);
    EXPECT_EQ(Ref.Stats.CandidatesGenerated,
              Results[I].Stats.CandidatesGenerated);
  }
}

TEST(SynthesizeBatch, DuplicateSpecsRunOneSearchAndAgree) {
  // The service-backed batch coalesces duplicates; every copy must
  // still receive the full, correct result.
  std::vector<Spec> Specs(6, introSpec());
  SynthOptions Opts;
  for (unsigned Workers : {0u, 4u}) {
    SCOPED_TRACE(Workers);
    BatchOptions Batch;
    Batch.Workers = Workers;
    std::vector<SynthResult> Results =
        synthesizeBatch(Specs, Alphabet::of("01"), Opts, Batch);
    ASSERT_EQ(Results.size(), Specs.size());
    SynthResult Ref = synthesize(introSpec(), Alphabet::of("01"), Opts);
    for (const SynthResult &R : Results) {
      EXPECT_EQ(Ref.Regex, R.Regex);
      EXPECT_EQ(Ref.Cost, R.Cost);
      EXPECT_EQ(Ref.Stats.CandidatesGenerated,
                R.Stats.CandidatesGenerated);
    }
  }
}
