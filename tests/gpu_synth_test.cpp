//===- tests/gpu_synth_test.cpp - GPU-style synthesizer parity ----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// DESIGN.md invariant 3: the GPU-style implementation returns the
/// same expression, the same cost, and the same candidate counts as
/// the sequential reference, for every specification, cost function
/// and worker count.
///
//===----------------------------------------------------------------------===//

#include "gpusim/GpuSynthesizer.h"

#include "benchgen/Generators.h"
#include "core/Synthesizer.h"
#include "regex/Matcher.h"

#include <gtest/gtest.h>

using namespace paresy;
using namespace paresy::gpusim;

namespace {

Spec introSpec() {
  return Spec({"10", "101", "100", "1010", "1011", "1000", "1001"},
              {"", "0", "1", "00", "11", "010"});
}

void expectParity(const Spec &S, const SynthOptions &Opts,
                  const GpuOptions &Gpu, bool CompareCounts = true) {
  SynthResult Cpu = synthesize(S, Alphabet::of("01"), Opts);
  GpuSynthResult GpuR = synthesizeGpu(S, Alphabet::of("01"), Opts, Gpu);
  ASSERT_EQ(Cpu.Status, GpuR.Result.Status);
  if (Cpu.found()) {
    EXPECT_EQ(Cpu.Regex, GpuR.Result.Regex);
    EXPECT_EQ(Cpu.Cost, GpuR.Result.Cost);
  }
  if (CompareCounts) {
    EXPECT_EQ(Cpu.Stats.CandidatesGenerated,
              GpuR.Result.Stats.CandidatesGenerated);
    EXPECT_EQ(Cpu.Stats.UniqueLanguages,
              GpuR.Result.Stats.UniqueLanguages);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Basic behaviour
//===----------------------------------------------------------------------===//

TEST(GpuSynthesizer, TrivialCases) {
  SynthOptions Opts;
  GpuSynthResult Empty =
      synthesizeGpu(Spec({}, {"0"}), Alphabet::of("01"), Opts);
  ASSERT_TRUE(Empty.found());
  EXPECT_EQ(Empty.Result.Regex, "@");
  GpuSynthResult Eps =
      synthesizeGpu(Spec({""}, {"0"}), Alphabet::of("01"), Opts);
  ASSERT_TRUE(Eps.found());
  EXPECT_EQ(Eps.Result.Regex, "#");
}

TEST(GpuSynthesizer, InvalidInputs) {
  SynthOptions Opts;
  Opts.Cost = CostFn(0, 1, 1, 1, 1);
  EXPECT_EQ(synthesizeGpu(introSpec(), Alphabet::of("01"), Opts)
                .Result.Status,
            SynthStatus::InvalidInput);
  SynthOptions Opts2;
  EXPECT_EQ(synthesizeGpu(Spec({"0"}, {"0"}), Alphabet::of("01"), Opts2)
                .Result.Status,
            SynthStatus::InvalidInput);
}

TEST(GpuSynthesizer, SolvesIntroductionExample) {
  SynthOptions Opts;
  GpuSynthResult R = synthesizeGpu(introSpec(), Alphabet::of("01"), Opts);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(R.Result.Cost, 8u);
  RegexManager M;
  ParseResult P = parseRegex(M, R.Result.Regex);
  ASSERT_TRUE(P);
  Spec S = introSpec();
  EXPECT_TRUE(satisfiesExamples(M, P.Re, S.Pos, S.Neg));
}

TEST(GpuSynthesizer, ReportsDeviceAccounting) {
  SynthOptions Opts;
  GpuSynthResult R = synthesizeGpu(introSpec(), Alphabet::of("01"), Opts);
  ASSERT_TRUE(R.found());
  EXPECT_GT(R.KernelLaunches, 0u);
  EXPECT_GT(R.DeviceOps, 0u);
  // Session overhead alone is 0.2 s (the paper's threshold).
  EXPECT_GE(R.ModeledGpuSeconds, 0.2);
  EXPECT_GT(R.HostSeconds, 0.0);
}

//===----------------------------------------------------------------------===//
// CPU parity
//===----------------------------------------------------------------------===//

TEST(GpuSynthesizer, ParityOnIntroExample) {
  expectParity(introSpec(), SynthOptions(), GpuOptions());
}

TEST(GpuSynthesizer, ParityWithHostWorkers) {
  GpuOptions Gpu;
  Gpu.HostWorkers = 4;
  expectParity(introSpec(), SynthOptions(), Gpu);
}

TEST(GpuSynthesizer, ParityWithTinyBatches) {
  // Batch boundaries must not change anything.
  GpuOptions Gpu;
  Gpu.BatchTasks = 3;
  expectParity(introSpec(), SynthOptions(), Gpu);
}

TEST(GpuSynthesizer, ParityInErrorMode) {
  SynthOptions Opts;
  Opts.AllowedError = 0.2;
  expectParity(introSpec(), Opts, GpuOptions());
}

TEST(GpuSynthesizer, ParityAcrossCostFunctions) {
  Spec S({"1", "011", "1011"}, {"", "10", "101"});
  for (const CostFn &Cost : paperCostFunctions()) {
    SynthOptions Opts;
    Opts.Cost = Cost;
    SCOPED_TRACE(Cost.name());
    expectParity(S, Opts, GpuOptions());
  }
}

class GpuParityRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GpuParityRandom, RandomSpecs) {
  benchgen::GenParams Params;
  Params.MaxLen = 4;
  Params.NumPos = 4;
  Params.NumNeg = 4;
  Params.Seed = GetParam();
  for (benchgen::BenchType Type :
       {benchgen::BenchType::Type1, benchgen::BenchType::Type2}) {
    benchgen::GeneratedBenchmark B;
    std::string Error;
    ASSERT_TRUE(benchgen::generate(Type, Params, B, &Error)) << Error;
    SCOPED_TRACE(B.Name);
    GpuOptions Gpu;
    Gpu.HostWorkers = (GetParam() % 2) ? 2 : 0;
    expectParity(B.Examples, SynthOptions(), Gpu);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpuParityRandom,
                         ::testing::Range<uint64_t>(100, 112));

//===----------------------------------------------------------------------===//
// Device memory exhaustion
//===----------------------------------------------------------------------===//

TEST(GpuSynthesizer, SmallDeviceMemoryReportsOutOfMemory) {
  SynthOptions Opts;
  Opts.MemoryLimitBytes = 1 << 10; // 1 KiB device budget.
  GpuSynthResult R = synthesizeGpu(introSpec(), Alphabet::of("01"), Opts);
  EXPECT_EQ(R.Result.Status, SynthStatus::OutOfMemory);
}

TEST(GpuSynthesizer, ModeledTimeGrowsWithWork) {
  SynthOptions Opts;
  GpuSynthResult Small = synthesizeGpu(Spec({"1"}, {"", "0"}),
                                       Alphabet::of("01"), Opts);
  GpuSynthResult Large = synthesizeGpu(introSpec(), Alphabet::of("01"),
                                       Opts);
  ASSERT_TRUE(Small.found());
  ASSERT_TRUE(Large.found());
  EXPECT_GT(Large.DeviceOps, Small.DeviceOps);
  EXPECT_GE(Large.ModeledGpuSeconds, Small.ModeledGpuSeconds);
}
