//===- tests/baseline_test.cpp - AlphaRegex baseline tests --------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baseline/AlphaRegex.h"

#include "core/Synthesizer.h"
#include "regex/Matcher.h"

#include <gtest/gtest.h>

using namespace paresy;
using namespace paresy::baseline;

namespace {

void expectPrecise(const AlphaRegexResult &R, const Spec &S) {
  ASSERT_TRUE(R.found()) << statusName(R.Status);
  RegexManager M;
  ParseResult P = parseRegex(M, R.Regex);
  ASSERT_TRUE(P) << R.Regex << ": " << P.Error;
  EXPECT_TRUE(satisfiesExamples(M, P.Re, S.Pos, S.Neg)) << R.Regex;
}

} // namespace

TEST(AlphaRegex, SolvesSingleLiteral) {
  AlphaRegexOptions Opts;
  Spec S({"1"}, {"0", "11", "10"});
  AlphaRegexResult R = alphaRegexSynthesize(S, Alphabet::of("01"), Opts);
  expectPrecise(R, S);
  EXPECT_EQ(R.Regex, "1");
  EXPECT_GT(R.Checked, 0u);
}

TEST(AlphaRegex, SolvesBeginWithZero) {
  AlphaRegexOptions Opts;
  Spec S({"0", "00", "01", "010", "0110"}, {"1", "10", "11", "101"});
  AlphaRegexResult R = alphaRegexSynthesize(S, Alphabet::of("01"), Opts);
  expectPrecise(R, S);
}

TEST(AlphaRegex, AgreesWithParesyOnMinimalCost) {
  // Where both are exact, the top-down and bottom-up searches must
  // agree on the minimum (the baseline's pruning is language-
  // preserving in this reimplementation).
  AlphaRegexOptions AOpts;
  SynthOptions POpts;
  for (const Spec &S :
       {Spec({"1"}, {"0", "11"}), Spec({"0", "00"}, {"1", "01"}),
        Spec({"10", "100"}, {"0", "1", "01"}),
        Spec({"11", "011", "110"}, {"0", "1", "10"})}) {
    AlphaRegexResult A = alphaRegexSynthesize(S, Alphabet::of("01"), AOpts);
    SynthResult P = synthesize(S, Alphabet::of("01"), POpts);
    ASSERT_TRUE(A.found());
    ASSERT_TRUE(P.found());
    EXPECT_EQ(A.Cost, P.Cost) << "alpha: " << A.Regex
                              << ", paresy: " << P.Regex;
  }
}

TEST(AlphaRegex, PruningReducesWork) {
  Spec S({"10", "100", "1000"}, {"0", "1", "01", "001"});
  AlphaRegexOptions WithPruning, WithoutPruning;
  WithoutPruning.EnablePruning = false;
  AlphaRegexResult A =
      alphaRegexSynthesize(S, Alphabet::of("01"), WithPruning);
  AlphaRegexResult B =
      alphaRegexSynthesize(S, Alphabet::of("01"), WithoutPruning);
  ASSERT_TRUE(A.found());
  ASSERT_TRUE(B.found());
  EXPECT_EQ(A.Cost, B.Cost);
  EXPECT_LT(A.Expanded, B.Expanded);
  EXPECT_GT(A.Pruned, 0u);
}

TEST(AlphaRegex, WildcardHeuristicFindsSolutions) {
  // The wild card makes (0+1) available at literal cost, so searches
  // that need Sigma often get cheaper (the paper's no9 note). Use the
  // AlphaRegex-comparable cost function and a tractable instance:
  // top-down search on hard instances legitimately takes minutes
  // (Table 2 shows 50-231 s rows), which is bench territory, not
  // unit-test territory.
  Spec S({"0", "00", "01", "010", "0110"}, {"1", "10", "11", "101"});
  AlphaRegexOptions Plain, Wild;
  Plain.Cost = CostFn(20, 20, 20, 5, 30);
  Wild.Cost = Plain.Cost;
  Wild.UseWildcard = true;
  AlphaRegexResult A = alphaRegexSynthesize(S, Alphabet::of("01"), Plain);
  AlphaRegexResult B = alphaRegexSynthesize(S, Alphabet::of("01"), Wild);
  expectPrecise(A, S);
  expectPrecise(B, S);
  EXPECT_LE(B.Checked, A.Checked);
}

TEST(AlphaRegex, WildcardResultsCanBeNonMinimal) {
  // With the wild card, the reported answer expands X to (0+1), whose
  // true cost can exceed the minimum - the minimality loss the paper
  // documents for AlphaRegex (Table 2 bold entries). On the
  // begin-with-0 instance the wildcard answer 0X* costs 115 while
  // (01*)* costs 85.
  SynthOptions POpts;
  AlphaRegexOptions Wild;
  Wild.Cost = CostFn(20, 20, 20, 5, 30);
  POpts.Cost = Wild.Cost;
  Wild.UseWildcard = true;
  Spec S({"0", "00", "01", "010", "0110"}, {"1", "10", "11", "101"});
  AlphaRegexResult A = alphaRegexSynthesize(S, Alphabet::of("01"), Wild);
  SynthResult P = synthesize(S, Alphabet::of("01"), POpts);
  ASSERT_TRUE(A.found());
  ASSERT_TRUE(P.found());
  EXPECT_GT(A.Cost, P.Cost) << "alpha: " << A.Regex
                            << ", paresy: " << P.Regex;
}

TEST(AlphaRegex, StatusesForBadInput) {
  AlphaRegexOptions Opts;
  EXPECT_EQ(
      alphaRegexSynthesize(Spec({"0"}, {"0"}), Alphabet::of("01"), Opts)
          .Status,
      SynthStatus::InvalidInput);
  Opts.Cost = CostFn(0, 1, 1, 1, 1);
  EXPECT_EQ(
      alphaRegexSynthesize(Spec({"0"}, {"1"}), Alphabet::of("01"), Opts)
          .Status,
      SynthStatus::InvalidInput);
}

TEST(AlphaRegex, StateBudgetAborts) {
  AlphaRegexOptions Opts;
  Opts.MaxStates = 5;
  Spec S({"1010", "0101"}, {"", "0", "1", "11"});
  AlphaRegexResult R = alphaRegexSynthesize(S, Alphabet::of("01"), Opts);
  EXPECT_EQ(R.Status, SynthStatus::OutOfMemory);
  EXPECT_LE(R.Expanded, 5u);
}

TEST(AlphaRegex, TimeoutAborts) {
  AlphaRegexOptions Opts;
  Opts.TimeoutSeconds = 1e-9;
  Spec S({"1010", "0101", "1100"}, {"", "0", "1", "11", "000111"});
  AlphaRegexResult R = alphaRegexSynthesize(S, Alphabet::of("01"), Opts);
  EXPECT_EQ(R.Status, SynthStatus::Timeout);
}

TEST(AlphaRegex, QuestionExtensionWorks) {
  AlphaRegexOptions Opts;
  Opts.EnableQuestion = true;
  // {eps would be needed}: AlphaRegex can't handle eps examples, but
  // 0? emerges for {0, eps-free} specs like accepting 0 and 00
  // optionally... use a spec where ? shortens the answer: {ab, b}.
  Spec S({"01", "1"}, {"0", "", "11", "00"});
  AlphaRegexResult R = alphaRegexSynthesize(S, Alphabet::of("01"), Opts);
  expectPrecise(R, S);
  EXPECT_LE(R.Cost, 4u); // 0?1: two literals + concat + question.
}
