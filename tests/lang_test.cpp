//===- tests/lang_test.cpp - Alphabet/Spec/Universe/GuideTable/CS tests -------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Alphabet.h"
#include "lang/CharSeq.h"
#include "lang/Fingerprint.h"
#include "lang/GuideTable.h"
#include "lang/Spec.h"
#include "lang/Universe.h"
#include "regex/Matcher.h"
#include "regex/Regex.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace paresy;

//===----------------------------------------------------------------------===//
// Alphabet
//===----------------------------------------------------------------------===//

TEST(Alphabet, SortsAndIndexes) {
  Alphabet A = Alphabet::of("badc");
  ASSERT_EQ(A.size(), 4u);
  EXPECT_EQ(A.symbol(0), 'a');
  EXPECT_EQ(A.symbol(3), 'd');
  EXPECT_EQ(A.indexOf('c'), 2);
  EXPECT_EQ(A.indexOf('z'), -1);
  EXPECT_TRUE(A.contains('b'));
  EXPECT_FALSE(A.contains('e'));
  EXPECT_EQ(A.symbols(), "abcd");
}

TEST(Alphabet, RejectsMetaCharacters) {
  for (char Meta : {'(', ')', '+', '*', '?', '@', '#'}) {
    std::string Error;
    Alphabet A = Alphabet::create(std::string(1, Meta), &Error);
    EXPECT_FALSE(Error.empty()) << Meta;
    EXPECT_TRUE(A.empty());
  }
}

TEST(Alphabet, RejectsDuplicatesAndWhitespace) {
  std::string Error;
  Alphabet::create("aa", &Error);
  EXPECT_FALSE(Error.empty());
  Alphabet::create("a b", &Error);
  EXPECT_FALSE(Error.empty());
  Alphabet::create("a\t", &Error);
  EXPECT_FALSE(Error.empty());
}

TEST(Alphabet, ContainsAll) {
  Alphabet A = Alphabet::of("01");
  EXPECT_TRUE(A.containsAll(""));
  EXPECT_TRUE(A.containsAll("0110"));
  EXPECT_FALSE(A.containsAll("012"));
}

TEST(Alphabet, EmptyAlphabetIsValid) {
  std::string Error;
  Alphabet A = Alphabet::create("", &Error);
  EXPECT_TRUE(Error.empty());
  EXPECT_TRUE(A.empty());
}

//===----------------------------------------------------------------------===//
// Spec
//===----------------------------------------------------------------------===//

TEST(Spec, ValidateAcceptsDisjointExamples) {
  Spec S({"10", "101"}, {"", "0"});
  std::string Error;
  EXPECT_TRUE(S.validate(Alphabet::of("01"), &Error)) << Error;
}

TEST(Spec, ValidateRejectsOverlapDuplicatesForeign) {
  Alphabet A = Alphabet::of("01");
  std::string Error;
  EXPECT_FALSE(Spec({"10"}, {"10"}).validate(A, &Error));
  EXPECT_NE(Error.find("both positive and negative"), std::string::npos);
  EXPECT_FALSE(Spec({"10", "10"}, {}).validate(A, &Error));
  EXPECT_NE(Error.find("duplicate"), std::string::npos);
  EXPECT_FALSE(Spec({"102"}, {}).validate(A, &Error));
  EXPECT_NE(Error.find("outside the alphabet"), std::string::npos);
  EXPECT_FALSE(Spec({}, {"abc"}).validate(A, &Error));
}

TEST(Spec, MaxExampleLength) {
  EXPECT_EQ(Spec({}, {}).maxExampleLength(), 0u);
  EXPECT_EQ(Spec({"10"}, {"10101"}).maxExampleLength(), 5u);
  EXPECT_EQ(Spec({""}, {}).maxExampleLength(), 0u);
}

TEST(Spec, TextRoundTrip) {
  Spec S({"10", ""}, {"0", "111"});
  std::string Text = S.toText();
  Spec Parsed;
  std::string Error;
  ASSERT_TRUE(parseSpecText(Text, Parsed, &Error)) << Error;
  EXPECT_EQ(Parsed.Pos, S.Pos);
  EXPECT_EQ(Parsed.Neg, S.Neg);
}

TEST(Spec, ParserHandlesCommentsAndBlankLines) {
  Spec Parsed;
  std::string Error;
  ASSERT_TRUE(parseSpecText("# header\n+01\n\n-1\n# tail\n+\n", Parsed,
                            &Error));
  EXPECT_EQ(Parsed.Pos, (std::vector<std::string>{"01", ""}));
  EXPECT_EQ(Parsed.Neg, (std::vector<std::string>{"1"}));
}

TEST(Spec, ParserRejectsBadPrefix) {
  Spec Parsed;
  std::string Error;
  EXPECT_FALSE(parseSpecText("+0\nx1\n", Parsed, &Error));
  EXPECT_NE(Error.find("line 2"), std::string::npos);
}

TEST(Spec, InferAlphabet) {
  Alphabet A;
  std::string Error;
  ASSERT_TRUE(inferAlphabet(Spec({"ba"}, {"cc"}), A, &Error));
  EXPECT_EQ(A.symbols(), "abc");
  ASSERT_TRUE(inferAlphabet(Spec({""}, {}), A, &Error));
  EXPECT_TRUE(A.empty());
}

//===----------------------------------------------------------------------===//
// Shortlex and infix closure
//===----------------------------------------------------------------------===//

TEST(Shortlex, OrdersByLengthThenLex) {
  EXPECT_TRUE(shortlexLess("", "0"));
  EXPECT_TRUE(shortlexLess("1", "00"));
  EXPECT_TRUE(shortlexLess("01", "10"));
  EXPECT_FALSE(shortlexLess("10", "01"));
  EXPECT_FALSE(shortlexLess("0", "0"));
}

TEST(InfixClosure, PaperExample36) {
  // ic({1, 011, 1011, 11011} u {eps, 10, 101, 0011}) from Example 3.6
  // has exactly 15 members.
  std::vector<std::string> Words = infixClosure(
      {"1", "011", "1011", "11011", "", "10", "101", "0011"});
  EXPECT_EQ(Words.size(), 15u);
  std::set<std::string> Set(Words.begin(), Words.end());
  for (const char *W :
       {"11011", "1101", "110", "11", "1011", "101", "10", "1", "011",
        "01", "0011", "001", "00", "0", ""})
    EXPECT_TRUE(Set.count(W)) << W;
}

TEST(InfixClosure, HeterogeneityExampleFromSec43) {
  // ic({aaa, aa}) = {aaa, aa, a, eps}: 4 members;
  // ic({abc, de}) has 10 members despite equal input lengths.
  EXPECT_EQ(infixClosure({"aaa", "aa"}).size(), 4u);
  EXPECT_EQ(infixClosure({"abc", "de"}).size(), 10u);
}

TEST(InfixClosure, EmptyInput) {
  EXPECT_TRUE(infixClosure({}).empty());
  EXPECT_EQ(infixClosure({""}).size(), 1u);
}

TEST(InfixClosure, IsInfixClosedAndSorted) {
  Rng R(17);
  for (int Trial = 0; Trial != 20; ++Trial) {
    std::vector<std::string> Input;
    for (int I = 0; I != 5; ++I) {
      std::string W;
      for (uint64_t L = R.below(7); L-- > 0;)
        W += R.chance(0.5) ? '1' : '0';
      Input.push_back(W);
    }
    std::vector<std::string> Closure = infixClosure(Input);
    std::set<std::string> Set(Closure.begin(), Closure.end());
    // Sorted in shortlex, no duplicates.
    for (size_t I = 1; I < Closure.size(); ++I)
      EXPECT_TRUE(shortlexLess(Closure[I - 1], Closure[I]));
    // Contains every infix of every member (idempotence).
    for (const std::string &W : Closure)
      for (size_t B = 0; B <= W.size(); ++B)
        for (size_t L = 0; L + B <= W.size(); ++L)
          EXPECT_TRUE(Set.count(W.substr(B, L)));
    // Contains the inputs themselves.
    for (const std::string &W : Input)
      EXPECT_TRUE(Set.count(W));
  }
}

//===----------------------------------------------------------------------===//
// Universe
//===----------------------------------------------------------------------===//

TEST(Universe, GeometryAndIndexing) {
  Spec S({"1", "011"}, {"", "10"});
  Universe U(S);
  // ic = {eps, 0, 1, 01, 10, 11, 011} -> 7 words, padded to 8 bits.
  EXPECT_EQ(U.size(), 7u);
  EXPECT_EQ(U.csBits(), 8u);
  EXPECT_EQ(U.csWords(), 1u);
  EXPECT_EQ(U.word(0), "");
  EXPECT_EQ(U.epsilonIndex(), 0u);
  EXPECT_EQ(U.indexOf("011"), 6);
  EXPECT_EQ(U.indexOf("absent"), -1);
}

TEST(Universe, PaddingCanBeDisabled) {
  Spec S({"1", "011"}, {"", "10"});
  Universe Padded(S, true), Exact(S, false);
  EXPECT_EQ(Padded.csBits(), 8u);
  EXPECT_EQ(Exact.csBits(), 7u);
  EXPECT_EQ(Exact.csWords(), 1u);
}

TEST(Universe, MasksMarkExamples) {
  Spec S({"1", "011"}, {"", "10"});
  Universe U(S);
  const uint64_t *Pos = U.posMask().data();
  const uint64_t *Neg = U.negMask().data();
  EXPECT_TRUE(testBit(Pos, size_t(U.indexOf("1"))));
  EXPECT_TRUE(testBit(Pos, size_t(U.indexOf("011"))));
  EXPECT_EQ(popcountWords(Pos, U.csWords()), 2u);
  EXPECT_TRUE(testBit(Neg, size_t(U.indexOf(""))));
  EXPECT_TRUE(testBit(Neg, size_t(U.indexOf("10"))));
  EXPECT_EQ(popcountWords(Neg, U.csWords()), 2u);
}

TEST(Universe, MultiWordGeometry) {
  // A single long example forces > 64 universe words.
  std::string Long;
  for (int I = 0; I != 12; ++I)
    Long += (I % 3 == 0) ? "01" : "10";
  Spec S({Long}, {"111111111111"});
  Universe U(S);
  EXPECT_GT(U.size(), 64u);
  EXPECT_GE(U.csWords(), 2u);
  EXPECT_EQ(U.csBits(), nextPowerOfTwo(U.size()));
}

TEST(Universe, DescribeCs) {
  Spec S({"1"}, {"0"});
  Universe U(S);
  std::vector<uint64_t> Cs(U.csWords(), 0);
  setBit(Cs.data(), U.epsilonIndex());
  setBit(Cs.data(), size_t(U.indexOf("1")));
  EXPECT_EQ(U.describeCs(Cs.data()), "{<eps>, 1}");
}

//===----------------------------------------------------------------------===//
// GuideTable
//===----------------------------------------------------------------------===//

TEST(GuideTable, RowsMatchSplitCounts) {
  Spec S({"1", "011"}, {"", "10"});
  Universe U(S);
  GuideTable GT(U);
  ASSERT_EQ(GT.rowCount(), U.size());
  for (size_t W = 0; W != U.size(); ++W)
    EXPECT_EQ(GT.pairCount(W), U.word(W).size() + 1) << U.word(W);
}

TEST(GuideTable, PairsAreExactlyTheSplits) {
  Rng R(23);
  for (int Trial = 0; Trial != 10; ++Trial) {
    std::vector<std::string> Pos, Neg;
    for (int I = 0; I != 3; ++I) {
      std::string W;
      for (uint64_t L = 1 + R.below(6); L-- > 0;)
        W += R.chance(0.5) ? '1' : '0';
      (I % 2 ? Pos : Neg).push_back(W + std::to_string(I % 2));
    }
    Spec S(Pos, Neg);
    Universe U(S);
    GuideTable GT(U);
    for (size_t W = 0; W != U.size(); ++W) {
      const std::string &Word = U.word(W);
      std::set<std::pair<uint32_t, uint32_t>> Expected;
      for (size_t Cut = 0; Cut <= Word.size(); ++Cut)
        Expected.insert(
            {uint32_t(U.indexOf(Word.substr(0, Cut))),
             uint32_t(U.indexOf(Word.substr(Cut)))});
      std::set<std::pair<uint32_t, uint32_t>> Actual;
      for (const SplitPair *P = GT.pairsBegin(W); P != GT.pairsEnd(W); ++P) {
        Actual.insert({P->Lhs, P->Rhs});
        // Soundness: the pair really concatenates to the word.
        EXPECT_EQ(U.word(P->Lhs) + U.word(P->Rhs), Word);
      }
      EXPECT_EQ(Actual, Expected) << Word;
    }
  }
}

TEST(GuideTable, TotalPairsSumsRows) {
  Spec S({"0101"}, {"11"});
  Universe U(S);
  GuideTable GT(U);
  size_t Sum = 0;
  for (size_t W = 0; W != U.size(); ++W)
    Sum += GT.pairCount(W);
  EXPECT_EQ(GT.totalPairs(), Sum);
}

//===----------------------------------------------------------------------===//
// CsAlgebra: operations agree with regex semantics
//===----------------------------------------------------------------------===//

namespace {

/// Reference CS: evaluate Lang(Re) membership of every universe word
/// with the derivative matcher.
std::vector<uint64_t> referenceCs(RegexManager &M, const Regex *Re,
                                  const Universe &U) {
  std::vector<uint64_t> Cs(U.csWords(), 0);
  DerivativeMatcher D(M);
  for (size_t I = 0; I != U.size(); ++I)
    if (D.matches(Re, U.word(I)))
      setBit(Cs.data(), I);
  return Cs;
}

struct CsFixture {
  Spec S;
  Universe U;
  GuideTable GT;
  CsAlgebra A;
  explicit CsFixture(Spec InS)
      : S(std::move(InS)), U(S), GT(U), A(U, &GT) {}
};

} // namespace

TEST(CsAlgebra, LiteralEpsilonEmpty) {
  CsFixture F(Spec({"1", "011"}, {"", "10"}));
  std::vector<uint64_t> Cs(F.U.csWords());
  F.A.makeLiteral(Cs.data(), '1');
  EXPECT_EQ(popcountWords(Cs.data(), Cs.size()), 1u);
  EXPECT_TRUE(testBit(Cs.data(), size_t(F.U.indexOf("1"))));
  F.A.makeEpsilon(Cs.data());
  EXPECT_TRUE(testBit(Cs.data(), 0));
  EXPECT_EQ(popcountWords(Cs.data(), Cs.size()), 1u);
  F.A.makeEmpty(Cs.data());
  EXPECT_TRUE(isZeroWords(Cs.data(), Cs.size()));
  // A literal absent from the examples denotes the empty set,
  // relative to the universe.
  F.A.makeLiteral(Cs.data(), 'z');
  EXPECT_TRUE(isZeroWords(Cs.data(), Cs.size()));
}

TEST(CsAlgebra, OperationsMatchRegexSemantics) {
  // Build CSs compositionally for a set of expressions and compare
  // with matcher-derived reference CSs - invariant 4 of DESIGN.md.
  CsFixture F(Spec({"1", "011", "1011", "11011"},
                   {"", "10", "101", "0011"}));
  RegexManager M;
  size_t Words = F.U.csWords();

  auto Check = [&](const char *Pattern) {
    const Regex *Re = parseRegex(M, Pattern).Re;
    ASSERT_NE(Re, nullptr) << Pattern;
    // Compositional evaluation over the CS algebra.
    std::vector<std::vector<uint64_t>> Stack;
    auto Eval = [&](const Regex *Node, auto &&Self) -> std::vector<uint64_t> {
      std::vector<uint64_t> Out(Words, 0);
      switch (Node->kind()) {
      case RegexKind::Empty:
        F.A.makeEmpty(Out.data());
        break;
      case RegexKind::Epsilon:
        F.A.makeEpsilon(Out.data());
        break;
      case RegexKind::Literal:
        F.A.makeLiteral(Out.data(), Node->symbol());
        break;
      case RegexKind::Question: {
        auto In = Self(Node->lhs(), Self);
        F.A.question(Out.data(), In.data());
        break;
      }
      case RegexKind::Star: {
        auto In = Self(Node->lhs(), Self);
        F.A.star(Out.data(), In.data());
        break;
      }
      case RegexKind::Concat: {
        auto L = Self(Node->lhs(), Self);
        auto R = Self(Node->rhs(), Self);
        F.A.concat(Out.data(), L.data(), R.data());
        break;
      }
      case RegexKind::Union: {
        auto L = Self(Node->lhs(), Self);
        auto R = Self(Node->rhs(), Self);
        F.A.unionOf(Out.data(), L.data(), R.data());
        break;
      }
      }
      return Out;
    };
    std::vector<uint64_t> Cs = Eval(Re, Eval);
    std::vector<uint64_t> Ref = referenceCs(M, Re, F.U);
    EXPECT_TRUE(equalWords(Cs.data(), Ref.data(), Words))
        << Pattern << ": got " << F.U.describeCs(Cs.data()) << ", want "
        << F.U.describeCs(Ref.data());
  };

  Check("0");
  Check("1");
  Check("01");
  Check("0?");
  Check("1*");
  Check("(0?1)*1"); // Example 3.6's expression.
  Check("10(0+1)*");
  Check("(01+1)*");
  Check("0*1?0*");
  Check("(11)*");
  Check("1(0+1)*1+0?");
  Check("((0+1)(0+1))*");
  Check("@1+1@");
  Check("#?*");
}

TEST(CsAlgebra, Example36CharacteristicSequence) {
  // The paper: CS of (0?1)*1 over Example 3.6's universe is exactly
  // {11011, 1011, 011, 11, 1}.
  CsFixture F(Spec({"1", "011", "1011", "11011"},
                   {"", "10", "101", "0011"}));
  RegexManager M;
  const Regex *Re = parseRegex(M, "(0?1)*1").Re;
  std::vector<uint64_t> Ref = referenceCs(M, Re, F.U);
  std::set<std::string> Members;
  for (size_t I = 0; I != F.U.size(); ++I)
    if (testBit(Ref.data(), I))
      Members.insert(F.U.word(I));
  EXPECT_EQ(Members, (std::set<std::string>{"11011", "1011", "011", "11",
                                            "1"}));
  // And it satisfies the specification.
  EXPECT_TRUE(F.A.satisfies(Ref.data()));
}

TEST(CsAlgebra, SatisfiesAndMistakes) {
  CsFixture F(Spec({"1", "011"}, {"", "10"}));
  std::vector<uint64_t> Cs(F.U.csWords(), 0);
  // Accept both positives: satisfied.
  setBit(Cs.data(), size_t(F.U.indexOf("1")));
  setBit(Cs.data(), size_t(F.U.indexOf("011")));
  EXPECT_TRUE(F.A.satisfies(Cs.data()));
  EXPECT_EQ(F.A.mistakes(Cs.data()), 0u);
  // Accept a negative too: one mistake.
  setBit(Cs.data(), size_t(F.U.indexOf("10")));
  EXPECT_FALSE(F.A.satisfies(Cs.data()));
  EXPECT_EQ(F.A.mistakes(Cs.data()), 1u);
  EXPECT_TRUE(F.A.satisfies(Cs.data(), 1));
  // Drop a positive: two mistakes.
  clearBit(Cs.data(), size_t(F.U.indexOf("011")));
  EXPECT_EQ(F.A.mistakes(Cs.data()), 2u);
  EXPECT_FALSE(F.A.satisfies(Cs.data(), 1));
  EXPECT_TRUE(F.A.satisfies(Cs.data(), 2));
}

TEST(CsAlgebra, BooleanExtensions) {
  CsFixture F(Spec({"1", "011"}, {"", "10"}));
  size_t Words = F.U.csWords();
  std::vector<uint64_t> A(Words), B(Words), Out(Words);
  F.A.makeLiteral(A.data(), '1');
  F.A.makeEpsilon(B.data());
  F.A.complement(Out.data(), A.data());
  EXPECT_EQ(popcountWords(Out.data(), Words), unsigned(F.U.size() - 1));
  EXPECT_FALSE(testBit(Out.data(), size_t(F.U.indexOf("1"))));
  F.A.intersect(Out.data(), A.data(), B.data());
  EXPECT_TRUE(isZeroWords(Out.data(), Words));
}

TEST(CsAlgebra, UnstagedConcatMatchesStaged) {
  Spec S({"1", "011", "1011"}, {"", "10", "101"});
  Universe U(S);
  GuideTable GT(U);
  CsAlgebra Staged(U, &GT);
  CsAlgebra Unstaged(U, nullptr);
  size_t Words = U.csWords();
  std::vector<uint64_t> A(Words), B(Words), OutS(Words), OutU(Words);
  Staged.makeLiteral(A.data(), '0');
  Staged.makeLiteral(B.data(), '1');
  Staged.concat(OutS.data(), A.data(), B.data());
  Unstaged.concat(OutU.data(), A.data(), B.data());
  EXPECT_TRUE(equalWords(OutS.data(), OutU.data(), Words));
  EXPECT_TRUE(testBit(OutS.data(), size_t(U.indexOf("01"))));
  // Star too.
  Staged.star(OutS.data(), A.data());
  Unstaged.star(OutU.data(), A.data());
  EXPECT_TRUE(equalWords(OutS.data(), OutU.data(), Words));
}

TEST(CsAlgebra, PairsVisitedAccounting) {
  Spec S({"01"}, {"0"});
  Universe U(S);
  GuideTable GT(U);
  CsAlgebra A(U, &GT);
  size_t Words = U.csWords();
  std::vector<uint64_t> X(Words), Y(Words), Out(Words);
  A.makeLiteral(X.data(), '0');
  A.makeLiteral(Y.data(), '1');
  EXPECT_EQ(A.pairsVisited(), 0u);
  A.concat(Out.data(), X.data(), Y.data());
  EXPECT_EQ(A.pairsVisited(), GT.totalPairs());
  A.resetPairsVisited();
  EXPECT_EQ(A.pairsVisited(), 0u);
}

//===----------------------------------------------------------------------===//
// Canonicalization and fingerprints
//===----------------------------------------------------------------------===//

TEST(Fingerprint, CanonicalSpecSortsShortlexAndDeduplicates) {
  Spec S({"10", "0", "", "10", "001"}, {"1", "1", "00"});
  Spec C = canonicalSpec(S);
  EXPECT_EQ(C.Pos, (std::vector<std::string>{"", "0", "10", "001"}));
  EXPECT_EQ(C.Neg, (std::vector<std::string>{"1", "00"}));
  // Idempotent.
  Spec CC = canonicalSpec(C);
  EXPECT_EQ(CC.Pos, C.Pos);
  EXPECT_EQ(CC.Neg, C.Neg);
}

TEST(Fingerprint, InvariantUnderExampleOrder) {
  Spec A({"10", "101", "100"}, {"", "0", "1"});
  Spec B({"100", "10", "101"}, {"1", "", "0"});
  SynthOptions Opts;
  Alphabet Sigma = Alphabet::of("01");
  EXPECT_EQ(fingerprintQuery(A, Sigma, Opts),
            fingerprintQuery(B, Sigma, Opts));
  EXPECT_EQ(fingerprintStaging(A, Sigma, Opts),
            fingerprintStaging(B, Sigma, Opts));
}

TEST(Fingerprint, SeparatesDistinctSpecsAndAlphabets) {
  SynthOptions Opts;
  Alphabet Sigma = Alphabet::of("01");
  Fingerprint Base = fingerprintQuery(Spec({"10"}, {"0"}), Sigma, Opts);
  // Moving an example across the P/N boundary, adding one, or changing
  // the alphabet all change the fingerprint.
  EXPECT_NE(Base, fingerprintQuery(Spec({"10", "0"}, {}), Sigma, Opts));
  EXPECT_NE(Base, fingerprintQuery(Spec({"10"}, {"0", "1"}), Sigma, Opts));
  EXPECT_NE(Base,
            fingerprintQuery(Spec({"10"}, {"0"}), Alphabet::of("012"),
                             Opts));
}

TEST(Fingerprint, SensitiveToEveryResultRelevantOption) {
  Spec S({"10"}, {"0"});
  Alphabet Sigma = Alphabet::of("01");
  SynthOptions Base;
  Fingerprint Ref = fingerprintQuery(S, Sigma, Base);

  auto Mutated = [&](auto Change) {
    SynthOptions O;
    Change(O);
    return fingerprintQuery(S, Sigma, O);
  };
  EXPECT_NE(Ref, Mutated([](SynthOptions &O) {
              O.Cost = CostFn(2, 1, 1, 1, 1);
            }));
  EXPECT_NE(Ref, Mutated([](SynthOptions &O) { O.MaxCost = 9; }));
  EXPECT_NE(Ref, Mutated([](SynthOptions &O) {
              O.MemoryLimitBytes = 1 << 20;
            }));
  EXPECT_NE(Ref, Mutated([](SynthOptions &O) { O.TimeoutSeconds = 1; }));
  EXPECT_NE(Ref, Mutated([](SynthOptions &O) { O.AllowedError = 0.25; }));
  EXPECT_NE(Ref, Mutated([](SynthOptions &O) {
              O.EnableOnTheFly = false;
            }));
  EXPECT_NE(Ref, Mutated([](SynthOptions &O) { O.SeedEpsilon = false; }));
  EXPECT_NE(Ref, Mutated([](SynthOptions &O) {
              O.UniquenessCheck = false;
            }));
  EXPECT_NE(Ref, Mutated([](SynthOptions &O) {
              O.UseGuideTable = false;
            }));
  EXPECT_NE(Ref, Mutated([](SynthOptions &O) {
              O.PadToPowerOfTwo = false;
            }));
}

TEST(Fingerprint, StagingKeyIgnoresSweepOnlyOptions) {
  Spec S({"10"}, {"0"});
  Alphabet Sigma = Alphabet::of("01");
  SynthOptions Base;
  Fingerprint Ref = fingerprintStaging(S, Sigma, Base);

  // Sweep-only knobs leave the staging key unchanged...
  SynthOptions Sweep;
  Sweep.Cost = CostFn(5, 2, 7, 2, 19);
  Sweep.MaxCost = 12;
  Sweep.TimeoutSeconds = 3;
  Sweep.AllowedError = 0.1;
  Sweep.EnableOnTheFly = false;
  Sweep.SeedEpsilon = false;
  Sweep.UniquenessCheck = false;
  EXPECT_EQ(Ref, fingerprintStaging(S, Sigma, Sweep));

  // ...while the geometry/staging flags change it.
  SynthOptions NoPad;
  NoPad.PadToPowerOfTwo = false;
  EXPECT_NE(Ref, fingerprintStaging(S, Sigma, NoPad));
  SynthOptions NoGuide;
  NoGuide.UseGuideTable = false;
  EXPECT_NE(Ref, fingerprintStaging(S, Sigma, NoGuide));
}

TEST(Fingerprint, GoldenCanonicalTexts) {
  // The exact bytes of every canonical key text, pinned. These texts
  // ARE the persisted cache/session/lineage key space: any byte-level
  // drift silently orphans parked sessions, result-cache entries and
  // delta-donor lineage matches across a version boundary, so a
  // deliberate format change must bump the embedded version tag (and
  // this test) rather than mutate an existing layout in place.
  Spec S = canonicalSpec(Spec({"10", "101"}, {"", "0"}));
  Alphabet Sigma = Alphabet::of("01");
  SynthOptions Defaults;
  // Pinned, not defaulted: PARESY_TEST_SHARDS flips the default shard
  // count in the sharded CI reruns, and golden bytes must not follow.
  Defaults.Shards = 1;
  EXPECT_EQ(canonicalQueryText(S, Sigma, Defaults),
            "paresy-query-v4\n"
            "alphabet=01\n"
            "+10\n+101\n-\n-0\n"
            "cost=(1, 1, 1, 1, 1)\n"
            "memory=0000000010000000\n"
            "shards=0000000000000001\n"
            "error=0000000000000000\n"
            "store=0000000000000000:0000000000000000:0000000000000000\n"
            "flags=11111\n"
            "maxcost=0000000000000000\n"
            "timeout=0000000000000000\n");
  EXPECT_EQ(canonicalStagingText(S, Sigma, Defaults),
            "paresy-staging-v1\n"
            "alphabet=01\n"
            "+10\n+101\n-\n-0\n"
            "flags=11\n");
  EXPECT_EQ(canonicalSessionText(S, Sigma, Defaults),
            "paresy-session-v4\n"
            "alphabet=01\n"
            "+10\n+101\n-\n-0\n"
            "cost=(1, 1, 1, 1, 1)\n"
            "memory=0000000010000000\n"
            "shards=0000000000000001\n"
            "error=0000000000000000\n"
            "store=0000000000000000:0000000000000000:0000000000000000\n"
            "flags=11111\n");
  EXPECT_EQ(canonicalLineageText(Sigma, Defaults),
            "paresy-lineage-v1\n"
            "alphabet=01\n"
            "cost=(1, 1, 1, 1, 1)\n"
            "memory=0000000010000000\n"
            "shards=0000000000000001\n"
            "error=0000000000000000\n"
            "store=0000000000000000:0000000000000000:0000000000000000\n"
            "flags=11111\n");

  // Non-default options, pinning the hex encodings of every numeric
  // field class: counts, IEEE doubles, the store triple and the flag
  // string. The lineage text is the session text minus the spec lines.
  SynthOptions O;
  O.Shards = 3;
  O.CompressStore = true;
  O.SpillDir = "/tmp/spill";
  O.MaxCost = 500;
  O.TimeoutSeconds = 2.5;
  O.AllowedError = 0.125;
  O.UseGuideTable = false;
  EXPECT_EQ(canonicalQueryText(S, Sigma, O),
            "paresy-query-v4\n"
            "alphabet=01\n"
            "+10\n+101\n-\n-0\n"
            "cost=(1, 1, 1, 1, 1)\n"
            "memory=0000000010000000\n"
            "shards=0000000000000003\n"
            "error=3fc0000000000000\n"
            "store=0000000000000001:0000000000000001:0000000004000000\n"
            "flags=11101\n"
            "maxcost=00000000000001f4\n"
            "timeout=4004000000000000\n");
  EXPECT_EQ(canonicalLineageText(Sigma, O),
            "paresy-lineage-v1\n"
            "alphabet=01\n"
            "cost=(1, 1, 1, 1, 1)\n"
            "memory=0000000010000000\n"
            "shards=0000000000000003\n"
            "error=3fc0000000000000\n"
            "store=0000000000000001:0000000000000001:0000000004000000\n"
            "flags=11101\n");

  // And the derived fingerprints, pinning the mixing function itself.
  EXPECT_EQ(fingerprintQuery(S, Sigma, Defaults).hex(),
            "aff726e195ac1aabe9aea960b62c7aba");
  EXPECT_EQ(fingerprintQuery(S, Sigma, O).hex(),
            "cd1acb138fc41f5c8e646adf796f5509");
  EXPECT_EQ(fingerprintText(canonicalLineageText(Sigma, Defaults)).hex(),
            "bced79140c249dc882f95d3e522a4166");
}

TEST(Fingerprint, StableTextEncodingAndHex) {
  // The fingerprint is a pure function of the canonical text: pin one
  // value so accidental encoding changes (which would silently orphan
  // every persisted cache key) fail a test.
  Fingerprint A = fingerprintText("paresy");
  Fingerprint B = fingerprintText("paresy");
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hex().size(), 32u);
  EXPECT_NE(A, fingerprintText("Paresy"));
  EXPECT_NE(A, fingerprintText(std::string_view("paresy\0x", 8)));

  // Length prefixing: a split never equals the concatenation.
  EXPECT_NE(FingerprintBuilder().addBytes("ab").addBytes("c").finish(),
            FingerprintBuilder().addBytes("abc").finish());
  EXPECT_NE(FingerprintBuilder().addBytes("a").addBytes("bc").finish(),
            FingerprintBuilder().addBytes("ab").addBytes("c").finish());
}
