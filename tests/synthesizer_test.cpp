//===- tests/synthesizer_test.cpp - Paresy CPU search tests -------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Core invariants (DESIGN.md Sec. 5): every Found result is precise
/// (verified by the independent derivative matcher) and minimal
/// (verified against the naive enumerator oracle), across cost
/// functions, random specifications and option ablations.
///
//===----------------------------------------------------------------------===//

#include "core/Synthesizer.h"

#include "benchgen/Generators.h"
#include "regex/Enumerator.h"
#include "regex/Matcher.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace paresy;

namespace {

Spec introSpec() {
  // Specification (1) from the paper's introduction.
  return Spec({"10", "101", "100", "1010", "1011", "1000", "1001"},
              {"", "0", "1", "00", "11", "010"});
}

Spec example36Spec() {
  return Spec({"1", "011", "1011", "11011"}, {"", "10", "101", "0011"});
}

/// Parses Result.Regex and checks it against the examples.
void expectPrecise(const SynthResult &R, const Spec &S) {
  ASSERT_TRUE(R.found()) << statusName(R.Status) << " " << R.Message;
  RegexManager M;
  ParseResult P = parseRegex(M, R.Regex);
  ASSERT_TRUE(P) << R.Regex << ": " << P.Error;
  EXPECT_TRUE(satisfiesExamples(M, P.Re, S.Pos, S.Neg)) << R.Regex;
  CostFn Uniform;
  (void)Uniform;
}

uint64_t parsedCost(const std::string &Text, const CostFn &Cost) {
  RegexManager M;
  ParseResult P = parseRegex(M, Text);
  EXPECT_TRUE(P) << Text;
  return Cost.of(P.Re);
}

} // namespace

//===----------------------------------------------------------------------===//
// Trivial cases and input validation
//===----------------------------------------------------------------------===//

TEST(Synthesizer, EmptyPositivesYieldEmptyLanguage) {
  SynthOptions Opts;
  SynthResult R = synthesize(Spec({}, {"0", "1"}), Alphabet::of("01"), Opts);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(R.Regex, "@");
  EXPECT_EQ(R.Cost, 1u);
}

TEST(Synthesizer, EpsilonOnlyPositivesYieldEpsilon) {
  SynthOptions Opts;
  SynthResult R = synthesize(Spec({""}, {"0", "10"}), Alphabet::of("01"),
                             Opts);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(R.Regex, "#");
  EXPECT_EQ(R.Cost, 1u);
}

TEST(Synthesizer, RejectsInvalidCostFunction) {
  SynthOptions Opts;
  Opts.Cost = CostFn(0, 1, 1, 1, 1);
  SynthResult R = synthesize(introSpec(), Alphabet::of("01"), Opts);
  EXPECT_EQ(R.Status, SynthStatus::InvalidInput);
  EXPECT_FALSE(R.Message.empty());
}

TEST(Synthesizer, RejectsOverlappingExamples) {
  SynthOptions Opts;
  SynthResult R =
      synthesize(Spec({"0"}, {"0"}), Alphabet::of("01"), Opts);
  EXPECT_EQ(R.Status, SynthStatus::InvalidInput);
}

TEST(Synthesizer, RejectsForeignCharacters) {
  SynthOptions Opts;
  SynthResult R =
      synthesize(Spec({"2"}, {"0"}), Alphabet::of("01"), Opts);
  EXPECT_EQ(R.Status, SynthStatus::InvalidInput);
}

TEST(Synthesizer, RejectsBadErrorFraction) {
  SynthOptions Opts;
  Opts.AllowedError = 1.0;
  SynthResult R =
      synthesize(Spec({"0"}, {"1"}), Alphabet::of("01"), Opts);
  EXPECT_EQ(R.Status, SynthStatus::InvalidInput);
}

//===----------------------------------------------------------------------===//
// Known instances
//===----------------------------------------------------------------------===//

TEST(Synthesizer, SolvesIntroductionExample) {
  SynthOptions Opts;
  Spec S = introSpec();
  SynthResult R = synthesize(S, Alphabet::of("01"), Opts);
  expectPrecise(R, S);
  // 10(0+1)* costs 8 under uniform costs; the minimum for this spec
  // (the oracle agrees, see MinimalityMatchesOracle) is 8.
  EXPECT_EQ(R.Cost, 8u);
  EXPECT_EQ(R.Cost, parsedCost(R.Regex, Opts.Cost));
}

TEST(Synthesizer, SolvesExample36) {
  SynthOptions Opts;
  Spec S = example36Spec();
  SynthResult R = synthesize(S, Alphabet::of("01"), Opts);
  expectPrecise(R, S);
  // (0?1)*1 costs 7 under uniform costs.
  EXPECT_LE(R.Cost, 7u);
}

TEST(Synthesizer, SolvesAllPositivesNoNegatives) {
  SynthOptions Opts;
  Spec S({"0", "00", "000"}, {});
  SynthResult R = synthesize(S, Alphabet::of("01"), Opts);
  expectPrecise(R, S);
  // 0* (cost 2) accepts everything required; nothing of cost 1 does.
  EXPECT_EQ(R.Cost, 2u);
}

TEST(Synthesizer, SingleCharacterLanguage) {
  SynthOptions Opts;
  Spec S({"1"}, {"", "0", "11", "10"});
  SynthResult R = synthesize(S, Alphabet::of("01"), Opts);
  expectPrecise(R, S);
  EXPECT_EQ(R.Regex, "1");
  EXPECT_EQ(R.Cost, 1u);
}

TEST(Synthesizer, WorksOnLargerAlphabets) {
  SynthOptions Opts;
  Spec S({"ab", "abc"}, {"a", "b", "c", "ba"});
  SynthResult R = synthesize(S, Alphabet::of("abc"), Opts);
  expectPrecise(R, S);
}

TEST(Synthesizer, UnusedAlphabetCharactersAreHarmless) {
  SynthOptions Opts;
  Spec S({"10"}, {"", "0", "1"});
  SynthResult Small = synthesize(S, Alphabet::of("01"), Opts);
  SynthResult Big = synthesize(S, Alphabet::of("014567"), Opts);
  ASSERT_TRUE(Small.found());
  ASSERT_TRUE(Big.found());
  EXPECT_EQ(Small.Cost, Big.Cost);
  expectPrecise(Big, S);
}

TEST(Synthesizer, EpsilonInPositivesWithOthers) {
  SynthOptions Opts;
  Spec S({"", "0", "00"}, {"1", "01", "10"});
  SynthResult R = synthesize(S, Alphabet::of("01"), Opts);
  expectPrecise(R, S);
  EXPECT_EQ(R.Cost, 2u); // 0*
}

//===----------------------------------------------------------------------===//
// Epsilon seeding (DESIGN.md deviation)
//===----------------------------------------------------------------------===//

TEST(Synthesizer, EpsilonSeedRequiredWhenQuestionIsDear) {
  // Under (1, 10, 1, 1, 1) the language {eps, 0} is written #+0 at
  // cost 3; the question-mark alternative 0? costs 11.
  SynthOptions Opts;
  Opts.Cost = CostFn(1, 10, 1, 1, 1);
  Spec S({"", "0"}, {"00", "1", "01"});

  SynthResult Seeded = synthesize(S, Alphabet::of("01"), Opts);
  expectPrecise(Seeded, S);
  EXPECT_EQ(Seeded.Cost, 3u);

  Opts.SeedEpsilon = false;
  SynthResult Unseeded = synthesize(S, Alphabet::of("01"), Opts);
  ASSERT_TRUE(Unseeded.found());
  EXPECT_GT(Unseeded.Cost, 3u) << "without the epsilon seed the "
                                  "pseudocode's search is non-minimal";

  // The oracle confirms 3 is the true minimum.
  RegexManager M;
  NaiveEnumerator E(M, {'0', '1'});
  EnumeratorResult Oracle = E.findMinimal(S.Pos, S.Neg, Opts.Cost, 12);
  ASSERT_TRUE(Oracle.found());
  EXPECT_EQ(Oracle.Cost, 3u);
}

//===----------------------------------------------------------------------===//
// Precision property over random specifications
//===----------------------------------------------------------------------===//

class SynthesizerPrecision : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SynthesizerPrecision, RandomSpecsAreSolvedPrecisely) {
  benchgen::GenParams Params;
  Params.MaxLen = 4;
  Params.NumPos = 4;
  Params.NumNeg = 4;
  Params.Seed = GetParam();
  for (benchgen::BenchType Type :
       {benchgen::BenchType::Type1, benchgen::BenchType::Type2}) {
    benchgen::GeneratedBenchmark B;
    std::string Error;
    ASSERT_TRUE(benchgen::generate(Type, Params, B, &Error)) << Error;
    SynthOptions Opts;
    SynthResult R = synthesize(B.Examples, Params.Sigma, Opts);
    expectPrecise(R, B.Examples);
    EXPECT_EQ(R.Cost, parsedCost(R.Regex, Opts.Cost)) << B.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesizerPrecision,
                         ::testing::Range<uint64_t>(1, 21));

//===----------------------------------------------------------------------===//
// Minimality property against the naive oracle
//===----------------------------------------------------------------------===//

struct MinimalityCase {
  uint64_t Seed;
  CostFn Cost;
};

class SynthesizerMinimality
    : public ::testing::TestWithParam<MinimalityCase> {};

TEST_P(SynthesizerMinimality, CostEqualsOracleMinimum) {
  const MinimalityCase &Case = GetParam();
  benchgen::GenParams Params;
  Params.MaxLen = 3;
  Params.NumPos = 3;
  Params.NumNeg = 3;
  Params.Seed = Case.Seed;
  benchgen::GeneratedBenchmark B;
  std::string Error;
  ASSERT_TRUE(benchgen::generate(benchgen::BenchType::Type2, Params, B,
                                 &Error))
      << Error;

  SynthOptions Opts;
  Opts.Cost = Case.Cost;
  SynthResult R = synthesize(B.Examples, Params.Sigma, Opts);
  expectPrecise(R, B.Examples);

  RegexManager M;
  NaiveEnumerator E(M, {'0', '1'});
  EnumeratorResult Oracle =
      E.findMinimal(B.Examples.Pos, B.Examples.Neg, Case.Cost, R.Cost,
                    /*MaxExpressions=*/4000000);
  if (Oracle.Aborted)
    GTEST_SKIP() << "oracle budget exhausted";
  // The oracle searched every expression of cost <= R.Cost: it must
  // find one (possibly R itself), and nothing cheaper may exist.
  ASSERT_TRUE(Oracle.found()) << B.Name << " result " << R.Regex;
  EXPECT_EQ(Oracle.Cost, R.Cost) << B.Name << ": paresy returned "
                                 << R.Regex << ", oracle found "
                                 << toString(Oracle.Re);
}

INSTANTIATE_TEST_SUITE_P(
    UniformCosts, SynthesizerMinimality,
    ::testing::Values(MinimalityCase{1, CostFn(1, 1, 1, 1, 1)},
                      MinimalityCase{2, CostFn(1, 1, 1, 1, 1)},
                      MinimalityCase{3, CostFn(1, 1, 1, 1, 1)},
                      MinimalityCase{4, CostFn(1, 1, 1, 1, 1)},
                      MinimalityCase{5, CostFn(1, 1, 1, 1, 1)},
                      MinimalityCase{6, CostFn(1, 1, 1, 1, 1)},
                      MinimalityCase{7, CostFn(1, 1, 1, 1, 1)},
                      MinimalityCase{8, CostFn(1, 1, 1, 1, 1)}));

INSTANTIATE_TEST_SUITE_P(
    SkewedCosts, SynthesizerMinimality,
    ::testing::Values(MinimalityCase{11, CostFn(3, 1, 1, 1, 1)},
                      MinimalityCase{12, CostFn(1, 3, 1, 1, 1)},
                      MinimalityCase{13, CostFn(1, 1, 3, 1, 1)},
                      MinimalityCase{14, CostFn(1, 1, 1, 3, 1)},
                      MinimalityCase{15, CostFn(1, 1, 1, 1, 3)},
                      MinimalityCase{16, CostFn(2, 2, 2, 1, 3)}));

//===----------------------------------------------------------------------===//
// Option ablations do not change results (only performance)
//===----------------------------------------------------------------------===//

TEST(Synthesizer, NoGuideTableSameResult) {
  SynthOptions Plain, NoGt;
  NoGt.UseGuideTable = false;
  Spec S = example36Spec();
  SynthResult A = synthesize(S, Alphabet::of("01"), Plain);
  SynthResult B = synthesize(S, Alphabet::of("01"), NoGt);
  ASSERT_TRUE(A.found());
  ASSERT_TRUE(B.found());
  EXPECT_EQ(A.Regex, B.Regex);
  EXPECT_EQ(A.Cost, B.Cost);
  EXPECT_EQ(A.Stats.CandidatesGenerated, B.Stats.CandidatesGenerated);
}

TEST(Synthesizer, NoPaddingSameResult) {
  SynthOptions Plain, NoPad;
  NoPad.PadToPowerOfTwo = false;
  Spec S = example36Spec();
  SynthResult A = synthesize(S, Alphabet::of("01"), Plain);
  SynthResult B = synthesize(S, Alphabet::of("01"), NoPad);
  ASSERT_TRUE(A.found());
  ASSERT_TRUE(B.found());
  EXPECT_EQ(A.Regex, B.Regex);
  EXPECT_EQ(A.Cost, B.Cost);
}

TEST(Synthesizer, NoUniquenessSameAnswerMoreWork) {
  SynthOptions Plain, NoUnique;
  NoUnique.UniquenessCheck = false;
  Spec S({"10", "100"}, {"", "0", "1", "01"});
  SynthResult A = synthesize(S, Alphabet::of("01"), Plain);
  SynthResult B = synthesize(S, Alphabet::of("01"), NoUnique);
  ASSERT_TRUE(A.found());
  ASSERT_TRUE(B.found());
  EXPECT_EQ(A.Cost, B.Cost);
  // Without deduplication the cache holds duplicates.
  EXPECT_GE(B.Stats.CacheEntries, A.Stats.CacheEntries);
}

//===----------------------------------------------------------------------===//
// Resource-limit statuses
//===----------------------------------------------------------------------===//

TEST(Synthesizer, MaxCostBoundsTheSweep) {
  SynthOptions Opts;
  Opts.MaxCost = 2;
  Spec S({"0", "1"}, {"", "00", "01", "11"}); // Needs 0+1, cost 3.
  SynthResult R = synthesize(S, Alphabet::of("01"), Opts);
  EXPECT_EQ(R.Status, SynthStatus::NotFound);
  EXPECT_EQ(R.Stats.LastCompletedCost, 2u);
}

TEST(Synthesizer, TinyMemoryBudgetReportsOutOfMemory) {
  SynthOptions Opts;
  Opts.MemoryLimitBytes = 1; // Capacity clamps to 16 entries.
  SynthResult R = synthesize(introSpec(), Alphabet::of("01"), Opts);
  EXPECT_EQ(R.Status, SynthStatus::OutOfMemory);
  EXPECT_TRUE(R.Stats.OnTheFly);
}

TEST(Synthesizer, OnTheFlyDisabledStopsEarlier) {
  SynthOptions WithOtf, WithoutOtf;
  WithOtf.MemoryLimitBytes = 1;
  WithoutOtf.MemoryLimitBytes = 1;
  WithoutOtf.EnableOnTheFly = false;
  SynthResult A = synthesize(introSpec(), Alphabet::of("01"), WithOtf);
  SynthResult B = synthesize(introSpec(), Alphabet::of("01"), WithoutOtf);
  EXPECT_EQ(A.Status, SynthStatus::OutOfMemory);
  EXPECT_EQ(B.Status, SynthStatus::OutOfMemory);
  EXPECT_FALSE(B.Stats.OnTheFly);
  EXPECT_GE(A.Stats.CandidatesGenerated, B.Stats.CandidatesGenerated);
}

TEST(Synthesizer, OnTheFlyStillFindsSolutionsPastTheCacheLimit) {
  // A budget that fits the seeds but fills during the sweep; the
  // solution must still be found while completeness holds, and must
  // still be minimal.
  SynthOptions Tight;
  Tight.MemoryLimitBytes = 600; // ~40 entries of one word each.
  Spec S({"1"}, {"", "0", "11", "10"});
  SynthResult R = synthesize(S, Alphabet::of("01"), Tight);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(R.Cost, 1u);
}

TEST(Synthesizer, MemoryPressureNeverChangesFoundAnswers) {
  // Sweep the memory budget down: runs either return the *same*
  // minimal cost as the unrestricted run or fail with OutOfMemory -
  // never a worse expression (the OnTheFly completeness-horizon
  // guarantee).
  Spec S({"1", "011", "1011"}, {"", "10", "101"});
  SynthOptions Unlimited;
  SynthResult Reference = synthesize(S, Alphabet::of("01"), Unlimited);
  ASSERT_TRUE(Reference.found());
  bool SawOom = false;
  for (uint64_t Budget : {40000u, 10000u, 3000u, 1000u, 300u, 1u}) {
    SynthOptions Tight;
    Tight.MemoryLimitBytes = Budget;
    SynthResult R = synthesize(S, Alphabet::of("01"), Tight);
    if (R.found())
      EXPECT_EQ(R.Cost, Reference.Cost) << "budget " << Budget;
    else {
      EXPECT_EQ(R.Status, SynthStatus::OutOfMemory) << "budget "
                                                    << Budget;
      SawOom = true;
    }
  }
  EXPECT_TRUE(SawOom) << "sweep never reached the OOM regime";
}

TEST(Synthesizer, TimeoutReported) {
  SynthOptions Opts;
  Opts.TimeoutSeconds = 1e-9;
  // Large enough that the sweep cannot finish within the timeout.
  Spec S({"1010", "0101", "10", "01"}, {"", "0", "1", "11", "00", "111"});
  SynthResult R = synthesize(S, Alphabet::of("01"), Opts);
  EXPECT_EQ(R.Status, SynthStatus::Timeout);
}

//===----------------------------------------------------------------------===//
// REI with error (Sec. 5.2)
//===----------------------------------------------------------------------===//

namespace {

/// The Sec. 5.2 example specification (Table 1 row 1).
Spec errorSectionSpec() {
  return Spec({"00", "1101", "0001", "0111", "001", "1", "10", "1100",
               "111", "1010"},
              {"", "0", "0000", "0011", "01", "010", "011", "100",
               "1000", "1001", "11", "1110"});
}

unsigned countMistakes(const std::string &Regex, const Spec &S) {
  RegexManager M;
  ParseResult P = parseRegex(M, Regex);
  EXPECT_TRUE(P) << Regex;
  DerivativeMatcher D(M);
  unsigned Mistakes = 0;
  for (const std::string &W : S.Pos)
    if (!D.matches(P.Re, W))
      ++Mistakes;
  for (const std::string &W : S.Neg)
    if (D.matches(P.Re, W))
      ++Mistakes;
  return Mistakes;
}

} // namespace

TEST(SynthesizerError, BudgetSemantics) {
  Spec S = errorSectionSpec();
  SynthOptions Opts;
  Opts.AllowedError = 0.25; // floor(0.25 * 22) = 5 mistakes allowed.
  SynthResult R = synthesize(S, Alphabet::of("01"), Opts);
  ASSERT_TRUE(R.found());
  EXPECT_LE(countMistakes(R.Regex, S), 5u);
}

TEST(SynthesizerError, CostIsMonotoneInAllowedError) {
  Spec S = errorSectionSpec();
  uint64_t PreviousCost = UINT64_MAX;
  for (double Error : {0.10, 0.20, 0.30, 0.40, 0.50}) {
    SynthOptions Opts;
    Opts.AllowedError = Error;
    SynthResult R = synthesize(S, Alphabet::of("01"), Opts);
    ASSERT_TRUE(R.found()) << Error;
    EXPECT_LE(R.Cost, PreviousCost) << Error;
    PreviousCost = R.Cost;
    unsigned Budget = unsigned(Error * double(S.exampleCount()));
    EXPECT_LE(countMistakes(R.Regex, S), Budget) << R.Regex;
  }
}

TEST(SynthesizerError, LargeBudgetAcceptsTrivialLanguages) {
  Spec S = errorSectionSpec();
  SynthOptions Opts;
  Opts.AllowedError = 0.5; // 11 of 22 examples may be misclassified.
  SynthResult R = synthesize(S, Alphabet::of("01"), Opts);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(R.Cost, 1u); // Some cost-1 language fits.
}

TEST(SynthesizerError, ZeroErrorEqualsPreciseMode) {
  Spec S({"10", "100"}, {"", "0", "1", "01"});
  SynthOptions Precise, Error;
  Error.AllowedError = 0.01; // floor(0.01 * 7) = 0: still precise.
  SynthResult A = synthesize(S, Alphabet::of("01"), Precise);
  SynthResult B = synthesize(S, Alphabet::of("01"), Error);
  ASSERT_TRUE(A.found());
  ASSERT_TRUE(B.found());
  EXPECT_EQ(A.Cost, B.Cost);
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(Synthesizer, StatsAreConsistent) {
  SynthOptions Opts;
  Spec S = example36Spec();
  SynthResult R = synthesize(S, Alphabet::of("01"), Opts);
  ASSERT_TRUE(R.found());
  const SynthStats &St = R.Stats;
  EXPECT_GT(St.CandidatesGenerated, 0u);
  EXPECT_LE(St.UniqueLanguages, St.CandidatesGenerated);
  EXPECT_LE(St.CacheEntries, St.UniqueLanguages);
  EXPECT_GT(St.UniverseSize, 0u);
  EXPECT_EQ(St.CsWords, 1u);
  EXPECT_GT(St.GuidePairs, 0u);
  EXPECT_GT(St.MemoryBytes, 0u);
  EXPECT_GE(St.PrecomputeSeconds, 0.0);
  EXPECT_GE(St.SearchSeconds, 0.0);
}

TEST(Synthesizer, OverfitBoundIsSufficient) {
  // The default MaxCost (the overfit bound) always suffices: even a
  // spec with no structure terminates with Found.
  Spec S({"0110", "1001"}, {"", "0", "1", "01", "10", "11"});
  EXPECT_EQ(overfitCostBound(S, CostFn()),
            (4 + 3) + (4 + 3) + 1u); // two words + one union
  SynthOptions Opts;
  SynthResult R = synthesize(S, Alphabet::of("01"), Opts);
  ASSERT_TRUE(R.found());
  EXPECT_LE(R.Cost, overfitCostBound(S, CostFn()));
  expectPrecise(R, S);
}
