//===- tests/enumerator_test.cpp - Naive oracle tests -------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "regex/Enumerator.h"

#include "regex/Matcher.h"

#include <gtest/gtest.h>

using namespace paresy;

TEST(Enumerator, FindsSingleLiteral) {
  RegexManager M;
  NaiveEnumerator E(M, {'0', '1'});
  EnumeratorResult R = E.findMinimal({"1"}, {"", "0", "11"},
                                     CostFn(), 10);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(toString(R.Re), "1");
  EXPECT_EQ(R.Cost, 1u);
}

TEST(Enumerator, FindsEpsilonAndEmpty) {
  RegexManager M;
  NaiveEnumerator E(M, {'0', '1'});
  EnumeratorResult Eps = E.findMinimal({""}, {"0"}, CostFn(), 4);
  ASSERT_TRUE(Eps.found());
  EXPECT_EQ(Eps.Cost, 1u);
  EXPECT_TRUE(Eps.Re->nullable());

  EnumeratorResult Nothing = E.findMinimal({}, {"0", "1"}, CostFn(), 4);
  ASSERT_TRUE(Nothing.found());
  EXPECT_EQ(Nothing.Cost, 1u);
}

TEST(Enumerator, MinimalCostIsExact) {
  RegexManager M;
  NaiveEnumerator E(M, {'0', '1'});
  // {0,1} needs 0+1: cost 3 under uniform costs.
  EnumeratorResult R =
      E.findMinimal({"0", "1"}, {"", "00", "01", "11"}, CostFn(), 8);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(R.Cost, 3u);
  EXPECT_TRUE(satisfiesExamples(M, R.Re, {"0", "1"},
                                {"", "00", "01", "11"}));
}

TEST(Enumerator, RespectsCostFunction) {
  RegexManager M;
  NaiveEnumerator E(M, {'0', '1'});
  // With a dearer union, 0+1 costs 4 instead of 3; the examples still
  // force a union, so the minimal cost reflects its price.
  EnumeratorResult R = E.findMinimal({"0", "1"}, {"", "00", "11", "01"},
                                     CostFn(1, 1, 1, 1, 2), 8);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(R.Cost, 4u);
}

TEST(Enumerator, NotFoundWithinBudget) {
  RegexManager M;
  NaiveEnumerator E(M, {'0', '1'});
  // 0+1 costs 3; a budget of 2 must fail without aborting.
  EnumeratorResult R =
      E.findMinimal({"0", "1"}, {"", "00", "01", "11"}, CostFn(), 2);
  EXPECT_FALSE(R.found());
  EXPECT_FALSE(R.Aborted);
  EXPECT_GT(R.Checked, 0u);
}

TEST(Enumerator, AbortsOnExpressionBudget) {
  RegexManager M;
  NaiveEnumerator E(M, {'0', '1'});
  // A 3-expression budget dies right after the seed level, long
  // before any expression can accept a length-6 string.
  EnumeratorResult R = E.findMinimal({"010101"}, {"0"}, CostFn(), 50,
                                     /*MaxExpressions=*/3);
  EXPECT_FALSE(R.found());
  EXPECT_TRUE(R.Aborted);
}

TEST(Enumerator, ChecksEverythingBelowTheAnswer) {
  RegexManager M;
  NaiveEnumerator E(M, {'0', '1'});
  // Sanity: the count of checked expressions grows with the cost of
  // the answer (exhaustiveness evidence).
  EnumeratorResult Small = E.findMinimal({"0"}, {""}, CostFn(), 10);
  EnumeratorResult Large =
      E.findMinimal({"10", "101", "100"}, {"", "0", "1", "11"},
                    CostFn(), 10);
  ASSERT_TRUE(Small.found());
  ASSERT_TRUE(Large.found());
  EXPECT_GT(Large.Checked, Small.Checked);
  EXPECT_GT(Large.Cost, Small.Cost);
}

TEST(Enumerator, ResultAlwaysSatisfiesSpec) {
  RegexManager M;
  NaiveEnumerator E(M, {'0', '1'});
  std::vector<std::string> Pos = {"10", "100"};
  std::vector<std::string> Neg = {"", "0", "01"};
  EnumeratorResult R = E.findMinimal(Pos, Neg, CostFn(), 12);
  ASSERT_TRUE(R.found());
  EXPECT_TRUE(satisfiesExamples(M, R.Re, Pos, Neg));
}
