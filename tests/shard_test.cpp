//===- tests/shard_test.cpp - Sharded search state ----------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// DESIGN.md Sec. 8 invariants: the hash-partitioned store is a pure
/// re-layout of the search state. Synthesis results, costs and
/// candidate counts are bit-identical for every shard count, on every
/// backend, at every worker count - the sharded extension of the
/// Sec. 7 "schedule independence" invariant - and the ShardedStore
/// container itself routes, resolves and reconstructs correctly
/// across segments.
///
//===----------------------------------------------------------------------===//

#include "core/ShardedStore.h"
#include "engine/BackendRegistry.h"
#include "engine/CpuParallelBackend.h"
#include "engine/SearchDriver.h"

#include "benchgen/Generators.h"
#include "lang/Fingerprint.h"
#include "support/Bits.h"

#include <gtest/gtest.h>

using namespace paresy;
using namespace paresy::engine;

namespace {

const unsigned ShardCounts[] = {1, 2, 3, 7};

Spec introSpec() {
  return Spec({"10", "101", "100", "1010", "1011", "1000", "1001"},
              {"", "0", "1", "00", "11", "010"});
}

std::vector<Spec> corpus() {
  return {introSpec(),
          Spec({"1", "011", "1011", "11011"}, {"", "10", "101", "0011"}),
          Spec({"0", "00", "000"}, {}),
          Spec({"", "0", "00"}, {"1", "01", "10"}),
          Spec({"10"}, {"", "0", "1"})};
}

/// A 2-word-wide CS with a recognisable pattern per seed.
std::vector<uint64_t> patternCs(uint64_t Seed) {
  return {hashMix64(Seed), hashMix64(Seed + 0x1234)};
}

/// Asserts \p R equals the unsharded reference \p Ref in everything
/// shard-invariant: result, cost, status and all candidate counts.
void expectShardInvariant(const SynthResult &Ref, const SynthResult &R) {
  ASSERT_EQ(Ref.Status, R.Status) << statusName(R.Status);
  EXPECT_EQ(Ref.Regex, R.Regex);
  EXPECT_EQ(Ref.Cost, R.Cost);
  EXPECT_EQ(Ref.Stats.CandidatesGenerated, R.Stats.CandidatesGenerated);
  EXPECT_EQ(Ref.Stats.UniqueLanguages, R.Stats.UniqueLanguages);
  EXPECT_EQ(Ref.Stats.CacheEntries, R.Stats.CacheEntries);
  EXPECT_EQ(Ref.Stats.LastCompletedCost, R.Stats.LastCompletedCost);
}

} // namespace

//===----------------------------------------------------------------------===//
// ShardedStore container
//===----------------------------------------------------------------------===//

TEST(ShardedStore, RoutingIsAPureFunctionOfTheBits) {
  ShardedStore Store(2, 7, 64);
  for (uint64_t Seed = 0; Seed != 200; ++Seed) {
    std::vector<uint64_t> Cs = patternCs(Seed);
    unsigned Owner = Store.shardOf(Cs.data());
    EXPECT_LT(Owner, 7u);
    EXPECT_EQ(Owner, Store.shardOf(Cs.data())); // Stable.
    EXPECT_EQ(Owner, Store.shardOfHash(hashWords(Cs.data(), 2)));
  }
}

TEST(ShardedStore, RoutingSpreadsAcrossShards) {
  // Not a uniformity proof - just a guard against a routing function
  // that collapses (e.g. one that reuses the slot-index bits).
  ShardedStore Store(2, 4, 4096);
  std::vector<size_t> PerShard(4, 0);
  for (uint64_t Seed = 0; Seed != 4096; ++Seed)
    ++PerShard[Store.shardOf(patternCs(Seed).data())];
  for (size_t Count : PerShard) {
    EXPECT_GT(Count, 4096u / 8); // Within 2x of the fair share.
    EXPECT_LT(Count, 4096u / 2);
  }
}

TEST(ShardedStore, GlobalIdsAreDenseAppendRanks) {
  ShardedStore Store(2, 3, 64);
  std::vector<std::vector<uint64_t>> Rows;
  for (uint64_t Seed = 0; Seed != 50; ++Seed) {
    Rows.push_back(patternCs(Seed));
    Provenance P{CsOp::Literal, char('a' + Seed % 3), 0, 0};
    uint32_t Id = Store.append(Rows.back().data(), P);
    ASSERT_EQ(Id, Seed); // Dense, in append order, regardless of owner.
  }
  EXPECT_EQ(Store.size(), 50u);
  size_t Sum = 0;
  for (unsigned S = 0; S != 3; ++S)
    Sum += Store.shardRows(S);
  EXPECT_EQ(Sum, 50u);
  for (uint32_t Id = 0; Id != 50; ++Id) {
    EXPECT_TRUE(equalWords(Store.cs(Id), Rows[Id].data(), 2)) << Id;
    EXPECT_EQ(Store.rowHash(Id), hashWords(Rows[Id].data(), 2)) << Id;
    EXPECT_EQ(Store.provenance(Id).Symbol, char('a' + Id % 3)) << Id;
    // The local row resolves through the owner segment to equal bits.
    unsigned Owner = Store.shardOf(Rows[Id].data());
    EXPECT_TRUE(equalWords(Store.shard(Owner).cs(Store.localRow(Id)),
                           Rows[Id].data(), 2))
        << Id;
  }
}

TEST(ShardedStore, ReserveWriteBulkPathMatchesAppend) {
  ShardedStore A(2, 3, 64), B(2, 3, 64);
  for (uint64_t Seed = 0; Seed != 40; ++Seed) {
    std::vector<uint64_t> Cs = patternCs(Seed);
    Provenance P{CsOp::Literal, char('x'), 0, 0};
    uint32_t IdA = A.append(Cs.data(), P);
    uint32_t IdB = B.reserveRow(B.shardOf(Cs.data()));
    B.writeRow(IdB, Cs.data(), P);
    ASSERT_EQ(IdA, IdB);
  }
  for (uint32_t Id = 0; Id != 40; ++Id) {
    EXPECT_TRUE(equalWords(A.cs(Id), B.cs(Id), 2)) << Id;
    EXPECT_EQ(A.rowHash(Id), B.rowHash(Id)) << Id;
  }
}

TEST(ShardedStore, SingleShardHasIdentityDirectory) {
  ShardedStore Store(1, 1, 32);
  for (uint64_t Seed = 0; Seed != 20; ++Seed) {
    uint64_t Word = hashMix64(Seed);
    uint32_t Id = Store.append(&Word, Provenance{});
    EXPECT_EQ(Store.localRow(Id), Id);
    EXPECT_EQ(Store.shardOf(&Word), 0u);
  }
  EXPECT_EQ(Store.capacity(), 32u);
  EXPECT_EQ(Store.shardRows(0), 20u);
}

TEST(ShardedStore, LevelRangesAreGlobalAndContiguous) {
  ShardedStore Store(1, 3, 32);
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    uint64_t Word = hashMix64(Seed);
    Store.append(&Word, Provenance{});
  }
  Store.setLevel(1, 0, 4);
  Store.setLevel(3, 4, 10);
  EXPECT_EQ(Store.level(1), std::make_pair(0u, 4u));
  EXPECT_EQ(Store.level(3), std::make_pair(4u, 10u));
  EXPECT_EQ(Store.level(2).first, Store.level(2).second); // Empty.
  EXPECT_EQ(Store.level(99).first, Store.level(99).second);
}

TEST(ShardedStore, PerShardCapacityAndOverflowAccounting) {
  ShardedStore Store(1, 2, 4);
  EXPECT_EQ(Store.capacity(), 8u);
  unsigned Filled = 0;
  for (uint64_t Seed = 0; Filled != 4; ++Seed) {
    uint64_t Word = hashMix64(Seed);
    unsigned Owner = Store.shardOf(&Word);
    if (Store.shardFull(Owner))
      continue;
    Store.append(Owner, &Word, Provenance{}, hashWords(&Word, 1));
    Filled = unsigned(std::max(Store.shardRows(0), Store.shardRows(1)));
  }
  unsigned FullShard = Store.shardRows(0) == 4 ? 0 : 1;
  EXPECT_TRUE(Store.shardFull(FullShard));
  EXPECT_EQ(Store.shardDropped(FullShard), 0u);
  Store.noteDropped(FullShard);
  EXPECT_EQ(Store.shardDropped(FullShard), 1u);
}

TEST(ShardedStore, ReconstructsAcrossShardBoundaries) {
  // Rows land in different shards; a union provenance over them must
  // still reconstruct by global id.
  ShardedStore Store(1, 3, 16);
  uint64_t W0 = hashMix64(1), W1 = hashMix64(2);
  uint32_t A = Store.append(&W0, Provenance{CsOp::Literal, '0', 0, 0});
  uint32_t B = Store.append(&W1, Provenance{CsOp::Literal, '1', 0, 0});
  RegexManager M;
  const Regex *Re =
      Store.reconstructCandidate(Provenance{CsOp::Union, 0, A, B}, M);
  EXPECT_EQ(toString(Re), "0+1");
}

//===----------------------------------------------------------------------===//
// Options plumbing
//===----------------------------------------------------------------------===//

TEST(ShardOptions, OutOfRangeShardCountIsInvalidInput) {
  SynthOptions Opts;
  Opts.Shards = ShardedStore::MaxShards + 1;
  SynthResult R = synthesize(introSpec(), Alphabet::of("01"), Opts);
  EXPECT_EQ(R.Status, SynthStatus::InvalidInput);
  EXPECT_NE(R.Message.find("shard"), std::string::npos) << R.Message;
}

TEST(ShardOptions, ZeroMeansOneShard) {
  SynthOptions One;
  One.Shards = 1;
  SynthOptions Zero;
  Zero.Shards = 0;
  SynthResult A = synthesize(introSpec(), Alphabet::of("01"), One);
  SynthResult B = synthesize(introSpec(), Alphabet::of("01"), Zero);
  expectShardInvariant(A, B);
  EXPECT_EQ(B.Stats.ShardCount, 1u);
  // And the two spell the same cached query.
  Spec Canonical = canonicalSpec(introSpec());
  EXPECT_EQ(canonicalQueryText(Canonical, Alphabet::of("01"), One),
            canonicalQueryText(Canonical, Alphabet::of("01"), Zero));
}

TEST(ShardOptions, ShardCountIsPartOfTheQueryKey) {
  SynthOptions One, Three;
  One.Shards = 1;
  Three.Shards = 3;
  Spec Canonical = canonicalSpec(introSpec());
  EXPECT_NE(canonicalQueryText(Canonical, Alphabet::of("01"), One),
            canonicalQueryText(Canonical, Alphabet::of("01"), Three));
}

//===----------------------------------------------------------------------===//
// Shard invariance (the Sec. 8 determinism property)
//===----------------------------------------------------------------------===//

TEST(ShardInvariance, KnownSpecsAcrossBackends) {
  for (const Spec &S : corpus()) {
    SCOPED_TRACE(S.toText());
    SynthOptions RefOpts;
    RefOpts.Shards = 1;
    SynthResult Ref = synthesize(S, Alphabet::of("01"), RefOpts);
    for (const std::string &Name : backendNames()) {
      for (unsigned Shards : ShardCounts) {
        SCOPED_TRACE("backend " + Name + ", shards " +
                     std::to_string(Shards));
        SynthOptions Opts;
        Opts.Shards = Shards;
        SynthResult R = synthesizeWith(Name, S, Alphabet::of("01"), Opts);
        expectShardInvariant(Ref, R);
        EXPECT_EQ(R.Stats.ShardCount, Shards);
        uint64_t Sum = 0;
        for (uint64_t Rows : R.Stats.ShardRows)
          Sum += Rows;
        EXPECT_EQ(Sum, R.Stats.CacheEntries);
      }
    }
  }
}

TEST(ShardInvariance, AcrossWorkerCounts) {
  Spec S = introSpec();
  SynthOptions RefOpts;
  RefOpts.Shards = 1;
  SynthResult Ref = synthesize(S, Alphabet::of("01"), RefOpts);
  for (unsigned Workers : {1u, 2u, 4u}) {
    for (unsigned Shards : ShardCounts) {
      SCOPED_TRACE("workers " + std::to_string(Workers) + ", shards " +
                   std::to_string(Shards));
      SynthOptions Opts;
      Opts.Shards = Shards;
      CpuParallelBackend B(Workers);
      SynthResult R = runSearch(S, Alphabet::of("01"), Opts, B);
      expectShardInvariant(Ref, R);
    }
  }
}

TEST(ShardInvariance, ErrorModeAndAblations) {
  Spec S({"00", "1101", "0001", "0111", "001", "1", "10", "1100", "111",
          "1010"},
         {"", "0", "0000", "0011", "01", "010", "011", "100", "1000",
          "1001", "11", "1110"});
  for (int Variant = 0; Variant != 3; ++Variant) {
    SynthOptions Base;
    switch (Variant) {
    case 0:
      Base.AllowedError = 0.25;
      break;
    case 1:
      Base.UniquenessCheck = false;
      Base.MaxCost = 7; // Duplicates explode without uniqueness.
      break;
    case 2:
      Base.SeedEpsilon = false;
      Base.MaxCost = 9;
      break;
    }
    SCOPED_TRACE(Variant);
    Base.Shards = 1;
    SynthResult Ref = synthesize(S, Alphabet::of("01"), Base);
    for (const char *Name : {"cpu", "gpusim"}) {
      for (unsigned Shards : ShardCounts) {
        SCOPED_TRACE(std::string(Name) + ", shards " +
                     std::to_string(Shards));
        SynthOptions Opts = Base;
        Opts.Shards = Shards;
        SynthResult R = synthesizeWith(Name, S, Alphabet::of("01"), Opts);
        expectShardInvariant(Ref, R);
      }
    }
  }
}

class ShardInvarianceRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardInvarianceRandom, RandomSpecs) {
  benchgen::GenParams Params;
  Params.MaxLen = 4;
  Params.NumPos = 4;
  Params.NumNeg = 4;
  Params.Seed = GetParam();
  for (benchgen::BenchType Type :
       {benchgen::BenchType::Type1, benchgen::BenchType::Type2}) {
    benchgen::GeneratedBenchmark B;
    std::string Error;
    ASSERT_TRUE(benchgen::generate(Type, Params, B, &Error)) << Error;
    SCOPED_TRACE(B.Name);
    SynthOptions RefOpts;
    RefOpts.Shards = 1;
    SynthResult Ref = synthesize(B.Examples, Params.Sigma, RefOpts);
    for (const char *Name : {"cpu", "cpu-parallel", "gpusim"}) {
      for (unsigned Shards : {2u, 3u, 7u}) {
        SCOPED_TRACE(std::string(Name) + ", shards " +
                     std::to_string(Shards));
        SynthOptions Opts;
        Opts.Shards = Shards;
        SynthResult R =
            synthesizeWith(Name, B.Examples, Params.Sigma, Opts);
        expectShardInvariant(Ref, R);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardInvarianceRandom,
                         ::testing::Range<uint64_t>(1, 9));

TEST(ShardInvariance, FoundAnswersSurviveMemoryPressure) {
  // Tight budgets fill individual shards earlier than the monolithic
  // cache (hash skew), so the fill level may differ per shard count -
  // but a Found answer must still be the same minimal cost, and drops
  // must be accounted to the shard that overflowed.
  Spec S({"1", "011", "1011"}, {"", "10", "101"});
  SynthOptions Unlimited;
  Unlimited.Shards = 1;
  SynthResult Reference = synthesize(S, Alphabet::of("01"), Unlimited);
  ASSERT_TRUE(Reference.found());
  for (unsigned Shards : ShardCounts) {
    for (uint64_t Budget : {40000u, 10000u, 3000u, 1u}) {
      SCOPED_TRACE("shards " + std::to_string(Shards) + ", budget " +
                   std::to_string(Budget));
      SynthOptions Tight;
      Tight.Shards = Shards;
      Tight.MemoryLimitBytes = Budget;
      SynthResult R = synthesize(S, Alphabet::of("01"), Tight);
      if (R.found())
        EXPECT_EQ(R.Cost, Reference.Cost);
      else
        EXPECT_EQ(R.Status, SynthStatus::OutOfMemory);
      uint64_t Dropped = 0;
      for (uint64_t D : R.Stats.ShardDropped)
        Dropped += D;
      if (!R.Stats.OnTheFly && R.Status != SynthStatus::OutOfMemory)
        EXPECT_EQ(Dropped, 0u);
    }
  }
}
