//===- tests/hetero_test.cpp - Co-scheduling backend + portfolio racer --------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The heterogeneous execution invariants (DESIGN.md Sec. 10):
///
///   * WorkQueue under contention: every unit claimed exactly once, no
///     matter how owner pops and thief steals race on the final unit;
///   * the hetero backend is bit-identical to *each* single-engine
///     backend (cpu, cpu-parallel, gpusim) at shard counts 1, 2, 3, 7,
///     with stealing forced by tiny grains and real thread pools;
///   * the portfolio racer returns the single-engine result
///     deterministically, exactly one arm wins, and losing
///     (cancelled) arms neither win nor poison the shared staged
///     query or any cache;
///   * a cooperative stop token cancels a session terminally:
///     SynthStatus::Cancelled, never parked, never cached.
///
//===----------------------------------------------------------------------===//

#include "engine/Backend.h"
#include "engine/BackendRegistry.h"
#include "engine/HeteroBackend.h"
#include "engine/Portfolio.h"
#include "engine/SearchDriver.h"
#include "engine/Session.h"
#include "engine/Staging.h"
#include "service/SynthService.h"
#include "support/WorkQueue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

using namespace paresy;
using namespace paresy::engine;

namespace {

Spec introSpec() {
  // Specification (1) from the paper's introduction.
  return Spec({"10", "101", "100", "1010", "1011", "1000", "1001"},
              {"", "0", "1", "00", "11", "010"});
}

Spec example36Spec() {
  return Spec({"1", "011", "1011", "11011"}, {"", "10", "101", "0011"});
}

/// Asserts the two results are bit-identical in everything the engine
/// invariants promise (regex, cost, status, and the schedule-
/// independent counters).
void expectSameResult(const SynthResult &Ref, const SynthResult &R) {
  ASSERT_EQ(Ref.Status, R.Status) << statusName(R.Status);
  EXPECT_EQ(Ref.Regex, R.Regex);
  EXPECT_EQ(Ref.Cost, R.Cost);
  EXPECT_EQ(Ref.Stats.CandidatesGenerated, R.Stats.CandidatesGenerated);
  EXPECT_EQ(Ref.Stats.UniqueLanguages, R.Stats.UniqueLanguages);
  EXPECT_EQ(Ref.Stats.UniverseSize, R.Stats.UniverseSize);
  EXPECT_EQ(Ref.Stats.LastCompletedCost, R.Stats.LastCompletedCost);
}

} // namespace

//===----------------------------------------------------------------------===//
// WorkQueue steal races
//===----------------------------------------------------------------------===//

TEST(WorkQueueStress, EveryUnitClaimedExactlyOnceUnderContention) {
  // Two claimers per side race the queue; the owner/thief collision on
  // a side's final unit is the CAS the queue exists to arbitrate. The
  // split walks the whole range across rounds so both all-owned and
  // all-stolen regimes occur.
  constexpr uint32_t Units = 512;
  for (uint32_t Round = 0; Round != 64; ++Round) {
    WorkQueue Q(Units, (Round * 37) % (Units + 1));
    std::vector<std::atomic<uint32_t>> Claimed(Units);
    for (std::atomic<uint32_t> &C : Claimed)
      C.store(0, std::memory_order_relaxed);
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T != 4; ++T)
      Threads.emplace_back([&, T] {
        unsigned Side = T % 2;
        for (uint32_t Unit; (Unit = Q.claim(Side)) != WorkQueue::None;)
          Claimed[Unit].fetch_add(1, std::memory_order_relaxed);
      });
    for (std::thread &T : Threads)
      T.join();
    for (uint32_t U = 0; U != Units; ++U)
      ASSERT_EQ(Claimed[U].load(), 1u) << "unit " << U << " round " << Round;
    EXPECT_EQ(Q.remaining(), 0u);
  }
}

//===----------------------------------------------------------------------===//
// Hetero vs every single-engine backend, across shard counts
//===----------------------------------------------------------------------===//

TEST(HeteroEquivalence, MatchesEverySingleEngineAcrossShards) {
  Spec S = introSpec();
  Alphabet Sigma = Alphabet::of("01");
  for (unsigned Shards : {1u, 2u, 3u, 7u}) {
    SCOPED_TRACE("shards " + std::to_string(Shards));
    SynthOptions Opts;
    Opts.Shards = Shards;
    SynthResult Hetero = synthesizeWith("hetero", S, Sigma, Opts);
    ASSERT_TRUE(Hetero.found());
    for (const char *Single : {"cpu", "cpu-parallel", "gpusim"}) {
      SCOPED_TRACE(Single);
      expectSameResult(synthesizeWith(Single, S, Sigma, Opts), Hetero);
    }
  }
}

TEST(HeteroEquivalence, TinyGrainsAndWorkerPoolsForceStealRaces) {
  // Tiny grains plus one worker thread per engine maximise queue
  // contention inside real kernel launches; the result must not move.
  Spec S = example36Spec();
  Alphabet Sigma = Alphabet::of("01");
  SynthOptions Opts;
  SynthResult Ref = synthesize(S, Sigma, Opts);
  for (unsigned Trial = 0; Trial != 3; ++Trial) {
    SCOPED_TRACE(Trial);
    HeteroOptions H;
    H.CpuWorkers = 1;
    H.GpuWorkers = 1;
    H.GrainTasks = 16;
    HeteroBackend B(H);
    SynthResult R = runSearch(S, Sigma, Opts, B);
    expectSameResult(Ref, R);
    // The engines' work covers the whole pipeline. (On a loaded or
    // single-core host one side may legitimately steal *everything*
    // before the other's thread wakes - that is work stealing doing
    // its job - so per-side minimums are only asserted in the
    // deterministic inline mode below.)
    EXPECT_GT(R.Stats.HeteroCpuTasks + R.Stats.HeteroGpuTasks, 0u);
    EXPECT_GE(R.Stats.HeteroCpuShare, 0.05);
    EXPECT_LE(R.Stats.HeteroCpuShare, 0.95);
    EXPECT_GT(R.Stats.HeteroCoschedSeconds, 0.0);
  }
}

TEST(HeteroEquivalence, InlineModeSplitsDeterministically) {
  // InlineKernels drains each engine's seeded range sequentially: no
  // stealing, so both engines always execute their share.
  Spec S = example36Spec();
  Alphabet Sigma = Alphabet::of("01");
  SynthOptions Opts;
  SynthResult Ref = synthesize(S, Sigma, Opts);
  HeteroOptions H;
  H.InlineKernels = true;
  H.GrainTasks = 16;
  HeteroBackend B(H);
  SynthResult R = runSearch(S, Sigma, Opts, B);
  expectSameResult(Ref, R);
  EXPECT_GT(R.Stats.HeteroCpuTasks, 0u);
  EXPECT_GT(R.Stats.HeteroGpuTasks, 0u);
  EXPECT_EQ(R.Stats.HeteroSteals, 0u);
}

TEST(HeteroEquivalence, InlineModeIsIdenticalToo) {
  // InlineKernels: both engines drain sequentially on the caller (the
  // synthesizeBatch regime). Same results, no helper threads.
  Spec S = introSpec();
  Alphabet Sigma = Alphabet::of("01");
  SynthOptions Opts;
  SynthResult Ref = synthesize(S, Sigma, Opts);
  BackendConfig Config;
  Config.InlineKernels = true;
  expectSameResult(Ref, synthesizeWith("hetero", S, Sigma, Opts, Config));
}

//===----------------------------------------------------------------------===//
// Cooperative cancellation
//===----------------------------------------------------------------------===//

TEST(Cancellation, PreSetTokenCancelsTerminallyAndNeverParks) {
  std::shared_ptr<const StagedQuery> Q =
      stage(introSpec(), Alphabet::of("01"), SynthOptions());
  for (const std::string &Name : backendNames()) {
    SCOPED_TRACE("backend " + Name);
    SearchSession Session(Q, createBackend(Name));
    std::atomic<bool> Stop{true};
    Session.setCancelToken(&Stop);
    SynthResult R = Session.run();
    EXPECT_EQ(R.Status, SynthStatus::Cancelled);
    EXPECT_EQ(Session.state(), SessionState::Finished);
    EXPECT_FALSE(Session.canSave());
  }
}

TEST(Cancellation, MidSweepTokenStopsWithoutCorruptingSharedStaging) {
  // Cancel one session mid-sweep, then re-run the *same* staged query
  // cold: the cancelled run must have left no trace in the shared
  // artifacts.
  Spec S = introSpec();
  Alphabet Sigma = Alphabet::of("01");
  std::shared_ptr<const StagedQuery> Q = stage(S, Sigma, SynthOptions());
  SynthResult Ref = synthesize(S, Sigma, SynthOptions());

  std::atomic<bool> Stop{false};
  SearchSession Victim(Q, createBackend("hetero"));
  Victim.setCancelToken(&Stop);
  // Step a few levels, then raise the token and finish the run.
  Victim.step();
  Victim.step();
  Stop.store(true);
  SynthResult Cancelled = Victim.run();
  EXPECT_EQ(Cancelled.Status, SynthStatus::Cancelled);
  EXPECT_EQ(Victim.state(), SessionState::Finished);

  std::unique_ptr<Backend> Fresh = createBackend("cpu-parallel");
  expectSameResult(Ref, runStaged(*Q, *Fresh));
}

//===----------------------------------------------------------------------===//
// Portfolio racing
//===----------------------------------------------------------------------===//

TEST(Portfolio, WinnerIsDeterministicInContent) {
  // Which arm finishes first is a race in *time*; the returned content
  // must never move because every arm is result-preserving.
  Spec S = introSpec();
  Alphabet Sigma = Alphabet::of("01");
  SynthOptions Opts;
  SynthResult Ref = synthesize(S, Sigma, Opts);
  std::shared_ptr<const StagedQuery> Q = stage(S, Sigma, Opts);
  for (unsigned Trial = 0; Trial != 4; ++Trial) {
    SCOPED_TRACE(Trial);
    PortfolioOutcome Race = runPortfolio(Q, "cpu-parallel");
    ASSERT_TRUE(Race.Result.found());
    EXPECT_EQ(Race.Result.Regex, Ref.Regex);
    EXPECT_EQ(Race.Result.Cost, Ref.Cost);
    // Exactly one winner; it Found; no cancelled arm ever wins.
    unsigned Winners = 0;
    for (const PortfolioArmReport &Arm : Race.Arms) {
      if (Arm.Winner) {
        ++Winners;
        EXPECT_EQ(Arm.Status, SynthStatus::Found);
      }
      if (Arm.Status == SynthStatus::Cancelled)
        EXPECT_FALSE(Arm.Winner);
    }
    EXPECT_EQ(Winners, 1u);
    EXPECT_EQ(Race.Arms.size(), 4u);
  }
}

TEST(Portfolio, LosersLeaveTheSharedQueryUntouched) {
  Spec S = example36Spec();
  Alphabet Sigma = Alphabet::of("01");
  SynthOptions Opts;
  SynthResult Ref = synthesize(S, Sigma, Opts);
  std::shared_ptr<const StagedQuery> Q = stage(S, Sigma, Opts);
  PortfolioOutcome Race = runPortfolio(Q, "cpu");
  ASSERT_TRUE(Race.Result.found());
  // Whatever the race did - including cancelling arms mid-level - a
  // cold run of the same staged query afterwards is bit-identical to
  // the reference.
  std::unique_ptr<Backend> Fresh = createBackend("cpu");
  expectSameResult(Ref, runStaged(*Q, *Fresh));
}

TEST(Portfolio, SynthesizeWithHonoursTheOption) {
  Spec S = introSpec();
  Alphabet Sigma = Alphabet::of("01");
  SynthOptions Plain, Raced;
  Raced.Portfolio = true;
  SynthResult Ref = synthesizeWith("cpu-parallel", S, Sigma, Plain);
  SynthResult R = synthesizeWith("cpu-parallel", S, Sigma, Raced);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(Ref.Regex, R.Regex);
  EXPECT_EQ(Ref.Cost, R.Cost);
}

TEST(Portfolio, ServiceStrategyRacesAndCachesOnlyRealAnswers) {
  service::ServiceOptions SOpts;
  SOpts.Backend = "hetero";
  SOpts.Portfolio = true;
  service::SynthService Service(SOpts);
  Spec S = introSpec();
  Alphabet Sigma = Alphabet::of("01");
  SynthResult Ref = synthesize(S, Sigma, SynthOptions());

  SynthResult First = Service.synthesize(S, Sigma, SynthOptions());
  ASSERT_TRUE(First.found());
  EXPECT_EQ(First.Regex, Ref.Regex);
  EXPECT_EQ(First.Cost, Ref.Cost);
  // The repeat is a result-cache hit of the same (winner) answer -
  // never of a cancelled loser.
  SynthResult Again = Service.synthesize(S, Sigma, SynthOptions());
  EXPECT_EQ(Again.Regex, First.Regex);
  EXPECT_EQ(Again.Status, SynthStatus::Found);

  service::ServiceStats St = Service.stats();
  EXPECT_EQ(St.PortfolioRaces, 1u);
  EXPECT_EQ(St.PortfolioArms, 4u);
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Searches, 1u);
  // The per-backend work ledger charges every arm's levels to the
  // service's backend.
  ASSERT_EQ(St.BackendLevels.size(), 1u);
  EXPECT_EQ(St.BackendLevels[0].first, "hetero");
  EXPECT_GT(St.BackendLevels[0].second, 0u);
}

//===----------------------------------------------------------------------===//
// Registry diagnostics
//===----------------------------------------------------------------------===//

TEST(Registry, UnknownBackendErrorListsTheRegisteredNames) {
  SynthResult R = synthesizeWith("warp9", introSpec(), Alphabet::of("01"),
                                 SynthOptions());
  EXPECT_EQ(R.Status, SynthStatus::InvalidInput);
  EXPECT_NE(R.Message.find("warp9"), std::string::npos);
  for (const std::string &Name : backendNames())
    EXPECT_NE(R.Message.find(Name), std::string::npos) << Name;
  // The service surfaces the same diagnostic.
  service::ServiceOptions SOpts;
  SOpts.Backend = "warp9";
  service::SynthService Service(SOpts);
  SynthResult SR =
      Service.synthesize(introSpec(), Alphabet::of("01"), SynthOptions());
  EXPECT_EQ(SR.Status, SynthStatus::InvalidInput);
  EXPECT_NE(SR.Message.find("registered:"), std::string::npos);
}

TEST(Registry, HeteroIsRegisteredAndNamed) {
  std::vector<std::string> Names = backendNames();
  EXPECT_TRUE(std::find(Names.begin(), Names.end(), "hetero") !=
              Names.end());
  std::unique_ptr<Backend> B = createBackend("hetero");
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->name(), "hetero");
  EXPECT_TRUE(B->supportsResume());
}
