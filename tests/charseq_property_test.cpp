//===- tests/charseq_property_test.cpp - CS algebra property tests ------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Property: for *any* regular expression r built compositionally with
/// the CS algebra over *any* specification's universe, the resulting
/// bitvector equals the matcher-derived characteristic function of
/// Lang(r) restricted to ic(P u N) - DESIGN.md invariant 4, here over
/// randomly generated expressions and specifications (the fixed-case
/// version lives in lang_test.cpp).
///
//===----------------------------------------------------------------------===//

#include "benchgen/Generators.h"
#include "lang/CharSeq.h"
#include "lang/GuideTable.h"
#include "lang/Universe.h"
#include "regex/Matcher.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace paresy;

namespace {

const Regex *randomRegex(RegexManager &M, Rng &R, int Budget) {
  if (Budget <= 1)
    return R.chance(0.5) ? M.literal('0') : M.literal('1');
  switch (R.below(5)) {
  case 0:
    return M.question(randomRegex(M, R, Budget - 1));
  case 1:
    return M.star(randomRegex(M, R, Budget - 1));
  case 2: {
    int Left = 1 + int(R.below(uint64_t(Budget - 1)));
    return M.concat(randomRegex(M, R, Left),
                    randomRegex(M, R, Budget - Left));
  }
  default: {
    int Left = 1 + int(R.below(uint64_t(Budget - 1)));
    return M.alt(randomRegex(M, R, Left),
                 randomRegex(M, R, Budget - Left));
  }
  }
}

/// Evaluates \p Re compositionally in the CS algebra.
std::vector<uint64_t> evalCs(CsAlgebra &A, const Regex *Re) {
  size_t Words = A.csWords();
  std::vector<uint64_t> Out(Words, 0);
  switch (Re->kind()) {
  case RegexKind::Empty:
    A.makeEmpty(Out.data());
    break;
  case RegexKind::Epsilon:
    A.makeEpsilon(Out.data());
    break;
  case RegexKind::Literal:
    A.makeLiteral(Out.data(), Re->symbol());
    break;
  case RegexKind::Question: {
    std::vector<uint64_t> In = evalCs(A, Re->lhs());
    A.question(Out.data(), In.data());
    break;
  }
  case RegexKind::Star: {
    std::vector<uint64_t> In = evalCs(A, Re->lhs());
    A.star(Out.data(), In.data());
    break;
  }
  case RegexKind::Concat: {
    std::vector<uint64_t> L = evalCs(A, Re->lhs());
    std::vector<uint64_t> R = evalCs(A, Re->rhs());
    A.concat(Out.data(), L.data(), R.data());
    break;
  }
  case RegexKind::Union: {
    std::vector<uint64_t> L = evalCs(A, Re->lhs());
    std::vector<uint64_t> R = evalCs(A, Re->rhs());
    A.unionOf(Out.data(), L.data(), R.data());
    break;
  }
  }
  return Out;
}

} // namespace

class CharSeqProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CharSeqProperty, CompositionMatchesMatcherSemantics) {
  // Random spec -> universe; random expressions -> CS vs matcher.
  benchgen::GenParams Params;
  Params.MaxLen = 5;
  Params.NumPos = 4;
  Params.NumNeg = 4;
  Params.Seed = GetParam();
  benchgen::GeneratedBenchmark B;
  std::string Error;
  ASSERT_TRUE(benchgen::generate(benchgen::BenchType::Type1, Params, B,
                                 &Error))
      << Error;

  Universe U(B.Examples);
  GuideTable GT(U);
  CsAlgebra Staged(U, &GT);
  CsAlgebra Unstaged(U, nullptr);

  RegexManager M;
  Rng R(GetParam() * 7919);
  DerivativeMatcher D(M);
  for (int Trial = 0; Trial != 25; ++Trial) {
    const Regex *Re = randomRegex(M, R, 8);
    std::vector<uint64_t> Cs = evalCs(Staged, Re);
    std::vector<uint64_t> CsSlow = evalCs(Unstaged, Re);
    ASSERT_TRUE(equalWords(Cs.data(), CsSlow.data(), U.csWords()))
        << "staged != unstaged for " << toString(Re);
    for (size_t I = 0; I != U.size(); ++I)
      ASSERT_EQ(testBit(Cs.data(), I), D.matches(Re, U.word(I)))
          << toString(Re) << " on universe word '" << U.word(I) << "'";
    // Padding bits above the universe stay clear (hash safety).
    for (size_t I = U.size(); I != U.csBits(); ++I)
      ASSERT_FALSE(testBit(Cs.data(), I)) << toString(Re);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CharSeqProperty,
                         ::testing::Range<uint64_t>(1, 13));
