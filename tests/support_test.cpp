//===- tests/support_test.cpp - support library unit tests -------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Bits.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/WorkQueue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

using namespace paresy;

//===----------------------------------------------------------------------===//
// Bits
//===----------------------------------------------------------------------===//

TEST(Bits, WordsForBits) {
  EXPECT_EQ(wordsForBits(0), 0u);
  EXPECT_EQ(wordsForBits(1), 1u);
  EXPECT_EQ(wordsForBits(64), 1u);
  EXPECT_EQ(wordsForBits(65), 2u);
  EXPECT_EQ(wordsForBits(128), 2u);
  EXPECT_EQ(wordsForBits(129), 3u);
}

TEST(Bits, NextPowerOfTwo) {
  EXPECT_EQ(nextPowerOfTwo(0), 1u);
  EXPECT_EQ(nextPowerOfTwo(1), 1u);
  EXPECT_EQ(nextPowerOfTwo(2), 2u);
  EXPECT_EQ(nextPowerOfTwo(3), 4u);
  EXPECT_EQ(nextPowerOfTwo(4), 4u);
  EXPECT_EQ(nextPowerOfTwo(5), 8u);
  EXPECT_EQ(nextPowerOfTwo(64), 64u);
  EXPECT_EQ(nextPowerOfTwo(65), 128u);
  EXPECT_EQ(nextPowerOfTwo(1000), 1024u);
}

TEST(Bits, SetTestClear) {
  uint64_t Words[3] = {0, 0, 0};
  for (size_t I : {0u, 1u, 63u, 64u, 100u, 191u}) {
    EXPECT_FALSE(testBit(Words, I));
    setBit(Words, I);
    EXPECT_TRUE(testBit(Words, I));
  }
  clearBit(Words, 64);
  EXPECT_FALSE(testBit(Words, 64));
  EXPECT_TRUE(testBit(Words, 63));
  EXPECT_TRUE(testBit(Words, 100));
}

TEST(Bits, BooleanOps) {
  uint64_t A[2] = {0b1100, 0b1010};
  uint64_t B[2] = {0b1010, 0b0110};
  uint64_t Out[2];
  orWords(Out, A, B, 2);
  EXPECT_EQ(Out[0], 0b1110u);
  EXPECT_EQ(Out[1], 0b1110u);
  andWords(Out, A, B, 2);
  EXPECT_EQ(Out[0], 0b1000u);
  EXPECT_EQ(Out[1], 0b0010u);
  andNotWords(Out, A, B, 2);
  EXPECT_EQ(Out[0], 0b0100u);
  EXPECT_EQ(Out[1], 0b1000u);
}

TEST(Bits, NotWordsMasksTail) {
  uint64_t A[2] = {0, 0};
  uint64_t Out[2];
  // 70 bits valid: complement must leave bits >= 70 clear.
  notWords(Out, A, 2, 70);
  EXPECT_EQ(Out[0], ~uint64_t(0));
  EXPECT_EQ(Out[1], (uint64_t(1) << 6) - 1);
}

TEST(Bits, ContainmentAndDisjointness) {
  uint64_t A[1] = {0b11110};
  uint64_t Sub[1] = {0b00110};
  uint64_t Dis[1] = {0b00001};
  uint64_t Zero[1] = {0};
  EXPECT_TRUE(containsWords(A, Sub, 1));
  EXPECT_FALSE(containsWords(Sub, A, 1));
  EXPECT_TRUE(disjointWords(A, Dis, 1));
  EXPECT_FALSE(disjointWords(A, Sub, 1));
  EXPECT_TRUE(isZeroWords(Zero, 1));
  EXPECT_FALSE(isZeroWords(A, 1));
}

TEST(Bits, Popcounts) {
  uint64_t A[2] = {0b1011, 0b0110};
  uint64_t B[2] = {0b0011, 0b1100};
  EXPECT_EQ(popcountWords(A, 2), 5u);
  EXPECT_EQ(popcountAnd(A, B, 2), 3u);
  EXPECT_EQ(popcountAndNot(A, B, 2), 2u);
}

TEST(Bits, EqualWords) {
  uint64_t A[2] = {7, 9};
  uint64_t B[2] = {7, 9};
  uint64_t C[2] = {7, 8};
  EXPECT_TRUE(equalWords(A, B, 2));
  EXPECT_FALSE(equalWords(A, C, 2));
  EXPECT_TRUE(equalWords(A, C, 1));
}

TEST(Bits, HashWordsDistinguishes) {
  uint64_t A[2] = {1, 0};
  uint64_t B[2] = {0, 1};
  uint64_t C[2] = {1, 0};
  EXPECT_NE(hashWords(A, 2), hashWords(B, 2));
  EXPECT_EQ(hashWords(A, 2), hashWords(C, 2));
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicPerSeed) {
  Rng A(42), B(42), C(43);
  bool Differs = false;
  for (int I = 0; I != 100; ++I) {
    uint64_t X = A.next();
    EXPECT_EQ(X, B.next());
    if (X != C.next())
      Differs = true;
  }
  EXPECT_TRUE(Differs);
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(R.below(Bound), Bound);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 400; ++I)
    Seen.insert(R.below(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng R(3);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 200; ++I) {
    uint64_t V = R.range(5, 8);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 8u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng R(9);
  double Sum = 0;
  for (int I = 0; I != 1000; ++I) {
    double V = R.unit();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
    Sum += V;
  }
  // Mean of 1000 uniforms should be near 0.5.
  EXPECT_NEAR(Sum / 1000.0, 0.5, 0.06);
}

//===----------------------------------------------------------------------===//
// Format
//===----------------------------------------------------------------------===//

TEST(Format, WithCommas) {
  EXPECT_EQ(withCommas(0), "0");
  EXPECT_EQ(withCommas(999), "999");
  EXPECT_EQ(withCommas(1000), "1,000");
  EXPECT_EQ(withCommas(26774099142ull), "26,774,099,142");
  EXPECT_EQ(withCommas(1234567), "1,234,567");
}

TEST(Format, Seconds) {
  EXPECT_EQ(formatSeconds(4.9512), "4.9512");
  EXPECT_EQ(formatSeconds(1.0, 2), "1.00");
}

TEST(Format, Speedup) {
  EXPECT_EQ(formatSpeedup(1026.4), "1026x");
  EXPECT_EQ(formatSpeedup(2.0), "2.00x");
}

TEST(Format, TextTableAligns) {
  TextTable T({"A", "Name"});
  T.addRow({"1", "x"});
  T.addRow({"22", "yy"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("A   Name"), std::string::npos);
  EXPECT_NE(Out.find("22  yy"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, InlineExecutionCoversAllIndices) {
  ThreadPool Pool(0);
  std::vector<int> Hits(100, 0);
  Pool.parallelFor(100, [&](size_t I) { Hits[I]++; });
  for (int H : Hits)
    EXPECT_EQ(H, 1);
}

TEST(ThreadPool, WorkersCoverAllIndicesOnce) {
  ThreadPool Pool(3);
  constexpr size_t N = 10000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](size_t I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, SequentialJobsReuseWorkers) {
  ThreadPool Pool(2);
  std::atomic<uint64_t> Sum{0};
  for (int Round = 0; Round != 20; ++Round)
    Pool.parallelFor(1000, [&](size_t I) {
      Sum.fetch_add(I, std::memory_order_relaxed);
    });
  EXPECT_EQ(Sum.load(), 20ull * (999ull * 1000ull / 2));
}

TEST(ThreadPool, ZeroAndOneSizedGrids) {
  ThreadPool Pool(2);
  int Calls = 0;
  Pool.parallelFor(0, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0);
  Pool.parallelFor(1, [&](size_t I) {
    EXPECT_EQ(I, 0u);
    ++Calls;
  });
  EXPECT_EQ(Calls, 1);
}

TEST(Timer, MeasuresForwardTime) {
  WallTimer T;
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(A, 0.0);
  EXPECT_GE(B, A);
  T.reset();
  EXPECT_GE(T.seconds(), 0.0);
}

//===----------------------------------------------------------------------===//
// WorkQueue (the hetero backend's work-stealing substrate)
//===----------------------------------------------------------------------===//

TEST(WorkQueue, OwnSideDrainsFrontFirst) {
  WorkQueue Q(8, 5);
  for (uint32_t Expected = 0; Expected != 5; ++Expected)
    EXPECT_EQ(Q.claim(0), Expected);
  for (uint32_t Expected = 5; Expected != 8; ++Expected)
    EXPECT_EQ(Q.claim(1), Expected);
  EXPECT_EQ(Q.claim(0), WorkQueue::None);
  EXPECT_EQ(Q.claim(1), WorkQueue::None);
  EXPECT_EQ(Q.stolenBy(0), 0u);
  EXPECT_EQ(Q.stolenBy(1), 0u);
}

TEST(WorkQueue, StealsTakeTheVictimsBack) {
  WorkQueue Q(6, 2);
  // Side 0 exhausts its own [0, 2), then steals 5, 4, 3, 2 from the
  // back of side 1's range.
  EXPECT_EQ(Q.claim(0), 0u);
  EXPECT_EQ(Q.claim(0), 1u);
  EXPECT_EQ(Q.claim(0), 5u);
  EXPECT_EQ(Q.claim(0), 4u);
  EXPECT_EQ(Q.stolenBy(0), 2u);
  // The victim still pops its own front.
  EXPECT_EQ(Q.claim(1), 2u);
  EXPECT_EQ(Q.claim(1), 3u);
  EXPECT_EQ(Q.claim(1), WorkQueue::None);
  EXPECT_EQ(Q.claim(0), WorkQueue::None);
  EXPECT_EQ(Q.stolenBy(1), 0u);
}

TEST(WorkQueue, SplitEdgesGiveOneSideEverything) {
  WorkQueue AllRight(4, 0);
  for (uint32_t Expected = 0; Expected != 4; ++Expected)
    EXPECT_EQ(AllRight.claim(1), Expected);
  EXPECT_EQ(AllRight.claim(1), WorkQueue::None);

  WorkQueue AllLeft(4, 4); // Split clamps to NumUnits.
  for (uint32_t Expected = 0; Expected != 4; ++Expected)
    EXPECT_EQ(AllLeft.claim(0), Expected);
  EXPECT_EQ(AllLeft.claim(0), WorkQueue::None);

  WorkQueue Empty(0, 0);
  EXPECT_EQ(Empty.claim(0), WorkQueue::None);
  EXPECT_EQ(Empty.claim(1), WorkQueue::None);
}

TEST(WorkQueue, RemainingCountsBothSides) {
  WorkQueue Q(10, 4);
  EXPECT_EQ(Q.remaining(), 10u);
  (void)Q.claim(0);
  (void)Q.claim(1);
  EXPECT_EQ(Q.remaining(), 8u);
  while (Q.claim(0) != WorkQueue::None) {
  }
  EXPECT_EQ(Q.remaining(), 0u);
}
