//===- tests/regex_test.cpp - AST, printer, parser, cost tests ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "regex/Cost.h"
#include "regex/Regex.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace paresy;

namespace {

/// Builds a random regex over {0,1} with roughly \p Budget nodes.
const Regex *randomRegex(RegexManager &M, Rng &R, int Budget) {
  if (Budget <= 1) {
    switch (R.below(4)) {
    case 0:
      return M.literal('0');
    case 1:
      return M.literal('1');
    case 2:
      return M.epsilon();
    default:
      return M.empty();
    }
  }
  switch (R.below(4)) {
  case 0:
    return M.question(randomRegex(M, R, Budget - 1));
  case 1:
    return M.star(randomRegex(M, R, Budget - 1));
  case 2: {
    int Left = 1 + int(R.below(uint64_t(Budget - 1)));
    return M.concat(randomRegex(M, R, Left),
                    randomRegex(M, R, Budget - Left));
  }
  default: {
    int Left = 1 + int(R.below(uint64_t(Budget - 1)));
    return M.alt(randomRegex(M, R, Left),
                 randomRegex(M, R, Budget - Left));
  }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Hash-consing and node structure
//===----------------------------------------------------------------------===//

TEST(RegexManager, HashConsingGivesPointerEquality) {
  RegexManager M;
  const Regex *A = M.concat(M.literal('0'), M.star(M.literal('1')));
  const Regex *B = M.concat(M.literal('0'), M.star(M.literal('1')));
  EXPECT_EQ(A, B);
  const Regex *C = M.concat(M.star(M.literal('1')), M.literal('0'));
  EXPECT_NE(A, C);
}

TEST(RegexManager, DistinctShapesAreDistinct) {
  RegexManager M;
  EXPECT_NE(M.empty(), M.epsilon());
  EXPECT_NE(M.literal('0'), M.literal('1'));
  EXPECT_NE(M.star(M.literal('0')), M.question(M.literal('0')));
  EXPECT_NE(M.alt(M.literal('0'), M.literal('1')),
            M.concat(M.literal('0'), M.literal('1')));
}

TEST(RegexManager, SizeCountsUniqueNodes) {
  RegexManager M; // Starts with @ and #.
  size_t Initial = M.size();
  M.literal('0');
  M.literal('0'); // Duplicate: no growth.
  EXPECT_EQ(M.size(), Initial + 1);
}

TEST(Regex, NodeCount) {
  RegexManager M;
  const Regex *Re =
      M.alt(M.concat(M.literal('1'), M.literal('0')),
            M.star(M.literal('1'))); // 10 + 1*
  EXPECT_EQ(Re->nodeCount(), 6u);
  EXPECT_EQ(M.empty()->nodeCount(), 1u);
}

TEST(Regex, NullabilityPrecomputed) {
  RegexManager M;
  EXPECT_FALSE(M.empty()->nullable());
  EXPECT_TRUE(M.epsilon()->nullable());
  EXPECT_FALSE(M.literal('0')->nullable());
  EXPECT_TRUE(M.star(M.literal('0'))->nullable());
  EXPECT_TRUE(M.question(M.literal('0'))->nullable());
  EXPECT_FALSE(
      M.concat(M.literal('0'), M.star(M.literal('1')))->nullable());
  EXPECT_TRUE(
      M.concat(M.question(M.literal('0')), M.star(M.literal('1')))
          ->nullable());
  EXPECT_TRUE(M.alt(M.literal('0'), M.epsilon())->nullable());
  EXPECT_FALSE(M.alt(M.literal('0'), M.literal('1'))->nullable());
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

TEST(RegexPrinter, AtomsAndUnary) {
  RegexManager M;
  EXPECT_EQ(toString(M.empty()), "@");
  EXPECT_EQ(toString(M.epsilon()), "#");
  EXPECT_EQ(toString(M.literal('a')), "a");
  EXPECT_EQ(toString(M.star(M.literal('a'))), "a*");
  EXPECT_EQ(toString(M.question(M.literal('a'))), "a?");
}

TEST(RegexPrinter, MinimalParentheses) {
  RegexManager M;
  const Regex *Zero = M.literal('0');
  const Regex *One = M.literal('1');
  // 10(0+1)* - the paper's introductory example.
  const Regex *Intro =
      M.concat(M.concat(One, Zero), M.star(M.alt(Zero, One)));
  EXPECT_EQ(toString(Intro), "10(0+1)*");
  // Union binds loosest: no parens at top level.
  EXPECT_EQ(toString(M.alt(M.concat(Zero, One), One)), "01+1");
  // Concat child of star needs parens; star child of concat does not.
  EXPECT_EQ(toString(M.star(M.concat(Zero, One))), "(01)*");
  EXPECT_EQ(toString(M.concat(M.star(Zero), One)), "0*1");
  // Stacked postfix operators need no parens.
  EXPECT_EQ(toString(M.question(M.star(Zero))), "0*?");
  EXPECT_EQ(toString(M.star(M.star(Zero))), "0**");
}

TEST(RegexPrinter, Example36FromThePaper) {
  RegexManager M;
  // (0?1)*1
  const Regex *Re = M.concat(
      M.star(M.concat(M.question(M.literal('0')), M.literal('1'))),
      M.literal('1'));
  EXPECT_EQ(toString(Re), "(0?1)*1");
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(RegexParser, ParsesAtoms) {
  RegexManager M;
  EXPECT_EQ(parseRegex(M, "@").Re, M.empty());
  EXPECT_EQ(parseRegex(M, "#").Re, M.epsilon());
  EXPECT_EQ(parseRegex(M, "a").Re, M.literal('a'));
}

TEST(RegexParser, PrecedenceMatchesPrinter) {
  RegexManager M;
  const Regex *Zero = M.literal('0');
  const Regex *One = M.literal('1');
  EXPECT_EQ(parseRegex(M, "10+1*").Re,
            M.alt(M.concat(One, Zero), M.star(One)));
  EXPECT_EQ(parseRegex(M, "(10)+1").Re, M.alt(M.concat(One, Zero), One));
  EXPECT_EQ(parseRegex(M, "1(0+1)").Re, M.concat(One, M.alt(Zero, One)));
  EXPECT_EQ(parseRegex(M, "01*").Re, M.concat(Zero, M.star(One)));
  EXPECT_EQ(parseRegex(M, "(01)*").Re, M.star(M.concat(Zero, One)));
}

TEST(RegexParser, ConcatIsLeftAssociativeUnionToo) {
  RegexManager M;
  const Regex *A = M.literal('a');
  const Regex *B = M.literal('b');
  const Regex *C = M.literal('c');
  EXPECT_EQ(parseRegex(M, "abc").Re, M.concat(M.concat(A, B), C));
  EXPECT_EQ(parseRegex(M, "a+b+c").Re, M.alt(M.alt(A, B), C));
}

TEST(RegexParser, SkipsWhitespace) {
  RegexManager M;
  EXPECT_EQ(parseRegex(M, " 1 0 ( 0 + 1 ) * ").Re,
            parseRegex(M, "10(0+1)*").Re);
}

TEST(RegexParser, RejectsMalformedInput) {
  RegexManager M;
  for (const char *Bad :
       {"", "(", ")", "(0", "0)", "+0", "*", "?", "0++1", "()"}) {
    ParseResult R = parseRegex(M, Bad);
    EXPECT_FALSE(R) << "input: " << Bad;
    EXPECT_FALSE(R.Error.empty());
  }
}

TEST(RegexParser, RoundTripsRandomExpressions) {
  RegexManager M;
  Rng R(2023);
  for (int I = 0; I != 500; ++I) {
    const Regex *Re = randomRegex(M, R, 12);
    ParseResult Parsed = parseRegex(M, toString(Re));
    ASSERT_TRUE(Parsed) << toString(Re) << ": " << Parsed.Error;
    // Hash-consing makes round-trip equality a pointer comparison.
    EXPECT_EQ(Parsed.Re, Re) << toString(Re);
  }
}

//===----------------------------------------------------------------------===//
// Cost homomorphisms
//===----------------------------------------------------------------------===//

TEST(Cost, UniformCostCountsConstructors) {
  RegexManager M;
  CostFn Uniform;
  // 10(0+1)*: 4 literals, 2 concats, 1 union, 1 star = 8.
  const Regex *Intro = parseRegex(M, "10(0+1)*").Re;
  ASSERT_NE(Intro, nullptr);
  EXPECT_EQ(Uniform.of(Intro), 8u);
  EXPECT_EQ(Uniform.of(M.empty()), 1u);
  EXPECT_EQ(Uniform.of(M.epsilon()), 1u);
}

TEST(Cost, TupleConventionMatchesPaper) {
  // "in (5, 2, 7, 2, 19), the cost of the Kleene-star is 7".
  CostFn C(5, 2, 7, 2, 19);
  EXPECT_EQ(C.Star, 7u);
  EXPECT_EQ(C.Literal, 5u);
  EXPECT_EQ(C.Question, 2u);
  EXPECT_EQ(C.Concat, 2u);
  EXPECT_EQ(C.Union, 19u);
  RegexManager M;
  EXPECT_EQ(C.of(parseRegex(M, "0*").Re), 12u);
  EXPECT_EQ(C.of(parseRegex(M, "0?").Re), 7u);
  EXPECT_EQ(C.of(parseRegex(M, "01").Re), 12u);
  EXPECT_EQ(C.of(parseRegex(M, "0+1").Re), 29u);
}

TEST(Cost, QuestionMayDifferFromEpsilonPlus) {
  // Def 3.2 allows cost(r?) != cost(#) + cost(r) + cost(+).
  CostFn C(1, 10, 1, 1, 1);
  RegexManager M;
  EXPECT_EQ(C.of(parseRegex(M, "0?").Re), 11u);
  EXPECT_EQ(C.of(parseRegex(M, "#+0").Re), 3u);
}

TEST(Cost, ValidityRequiresPositiveConstants) {
  EXPECT_TRUE(CostFn(1, 1, 1, 1, 1).isValid());
  EXPECT_FALSE(CostFn(0, 1, 1, 1, 1).isValid());
  EXPECT_FALSE(CostFn(1, 1, 0, 1, 1).isValid());
}

TEST(Cost, MinConstructorCost) {
  EXPECT_EQ(CostFn(1, 1, 1, 1, 1).minConstructorCost(), 1u);
  EXPECT_EQ(CostFn(1, 10, 10, 10, 10).minConstructorCost(), 10u);
  EXPECT_EQ(CostFn(20, 20, 20, 5, 30).minConstructorCost(), 5u);
}

TEST(Cost, PaperCostFunctionList) {
  const auto &Fns = paperCostFunctions();
  ASSERT_EQ(Fns.size(), 12u);
  EXPECT_EQ(Fns[0].name(), "(1, 1, 1, 1, 1)");
  EXPECT_EQ(Fns[3].name(), "(1, 1, 10, 1, 1)"); // Expensive star.
  EXPECT_EQ(Fns[11].name(), "(20, 20, 20, 5, 30)");
  for (const CostFn &C : Fns)
    EXPECT_TRUE(C.isValid()) << C.name();
}

TEST(Cost, NameFormat) {
  EXPECT_EQ(CostFn(5, 2, 7, 2, 19).name(), "(5, 2, 7, 2, 19)");
}
