//===- tests/gpusim_test.cpp - Device, scan, hash set, perf model -------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Device.h"
#include "gpusim/PerfModel.h"
#include "gpusim/Scan.h"
#include "gpusim/WarpHashSet.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace paresy;
using namespace paresy::gpusim;

//===----------------------------------------------------------------------===//
// Device + PerfModel
//===----------------------------------------------------------------------===//

TEST(Device, LaunchRunsEveryTask) {
  Device D(DeviceSpec{}, /*Workers=*/0);
  std::vector<int> Hits(1000, 0);
  uint64_t Ops = D.launch("test", 1000, [&](size_t I) -> uint64_t {
    Hits[I]++;
    return 3;
  });
  EXPECT_EQ(Ops, 3000u);
  for (int H : Hits)
    EXPECT_EQ(H, 1);
  EXPECT_EQ(D.perf().launchCount(), 1u);
  EXPECT_EQ(D.perf().totalOps(), 3000u);
}

TEST(Device, LaunchWithWorkers) {
  Device D(DeviceSpec{}, /*Workers=*/3);
  std::atomic<uint64_t> Sum{0};
  D.launch("test", 5000, [&](size_t I) -> uint64_t {
    Sum.fetch_add(I, std::memory_order_relaxed);
    return 1;
  });
  EXPECT_EQ(Sum.load(), 4999ull * 5000ull / 2);
}

TEST(PerfModel, SessionOverheadReproducesMeasurementThreshold) {
  // The paper observes ~0.2 s minimum on any Colab GPU task (Sec 4.2).
  DeviceSpec Spec;
  PerfModel Model(Spec);
  EXPECT_NEAR(Model.modeledSeconds(), 0.2, 1e-9);
}

TEST(PerfModel, ChargesWavesAndLatency) {
  DeviceSpec Spec;
  Spec.SessionOverheadSeconds = 0;
  Spec.LaunchLatencySeconds = 1e-6;
  Spec.ParallelLanes = 100;
  Spec.LaneOpsPerSecond = 1e6;
  PerfModel Model(Spec);
  // 250 tasks x 1000 ops: 3 waves x (1000 ops / 1e6 ops/s) + launch.
  Model.recordLaunch(250, 250 * 1000);
  EXPECT_NEAR(Model.modeledSeconds(), 1e-6 + 3 * 1e-3, 1e-9);
  EXPECT_EQ(Model.launchCount(), 1u);
  EXPECT_EQ(Model.totalOps(), 250000u);
}

TEST(PerfModel, MoreParallelWorkScalesSublinearly) {
  // Fixed per-task work: doubling tasks within one wave costs nothing.
  DeviceSpec Spec;
  Spec.SessionOverheadSeconds = 0;
  Spec.LaunchLatencySeconds = 0;
  PerfModel A(Spec), B(Spec);
  A.recordLaunch(100, 100 * 50);
  B.recordLaunch(200, 200 * 50);
  EXPECT_DOUBLE_EQ(A.modeledSeconds(), B.modeledSeconds());
}

TEST(PerfModel, EmptyLaunchCostsLatencyOnly) {
  DeviceSpec Spec;
  Spec.SessionOverheadSeconds = 0;
  PerfModel Model(Spec);
  Model.recordLaunch(0, 0);
  EXPECT_DOUBLE_EQ(Model.modeledSeconds(), Spec.LaunchLatencySeconds);
}

//===----------------------------------------------------------------------===//
// exclusiveScan
//===----------------------------------------------------------------------===//

TEST(Scan, EmptyAndSingleton) {
  Device D(DeviceSpec{}, 0);
  EXPECT_EQ(exclusiveScan(D, nullptr, nullptr, 0), 0u);
  uint32_t In[1] = {7};
  uint64_t Out[1] = {99};
  EXPECT_EQ(exclusiveScan(D, In, Out, 1), 7u);
  EXPECT_EQ(Out[0], 0u);
}

TEST(Scan, SmallKnownInput) {
  Device D(DeviceSpec{}, 0);
  uint32_t In[6] = {1, 0, 2, 0, 3, 1};
  uint64_t Out[6];
  EXPECT_EQ(exclusiveScan(D, In, Out, 6), 7u);
  uint64_t Expected[6] = {0, 1, 1, 3, 3, 6};
  for (int I = 0; I != 6; ++I)
    EXPECT_EQ(Out[I], Expected[I]) << I;
}

TEST(Scan, CrossesBlockBoundaries) {
  // > 4096 elements exercises the multi-block path.
  Device D(DeviceSpec{}, 2);
  size_t N = 10000;
  std::vector<uint32_t> In(N);
  Rng R(5);
  for (uint32_t &V : In)
    V = uint32_t(R.below(4));
  std::vector<uint64_t> Out(N);
  uint64_t Total = exclusiveScan(D, In.data(), Out.data(), N);
  uint64_t Running = 0;
  for (size_t I = 0; I != N; ++I) {
    ASSERT_EQ(Out[I], Running) << I;
    Running += In[I];
  }
  EXPECT_EQ(Total, Running);
}

TEST(Scan, AllZerosAndAllOnes) {
  Device D(DeviceSpec{}, 0);
  std::vector<uint32_t> Zero(5000, 0), One(5000, 1);
  std::vector<uint64_t> Out(5000);
  EXPECT_EQ(exclusiveScan(D, Zero.data(), Out.data(), 5000), 0u);
  EXPECT_EQ(exclusiveScan(D, One.data(), Out.data(), 5000), 5000u);
  EXPECT_EQ(Out[4999], 4999u);
}

//===----------------------------------------------------------------------===//
// WarpHashSet
//===----------------------------------------------------------------------===//

TEST(WarpHashSet, InsertAndFind) {
  WarpHashSet Set(2, 64);
  uint64_t A[2] = {1, 2};
  uint64_t B[2] = {1, 3};
  int64_t SlotA = Set.insert(A, 0);
  ASSERT_GE(SlotA, 0);
  EXPECT_TRUE(Set.isWinner(size_t(SlotA), 0));
  EXPECT_EQ(Set.find(A), SlotA);
  EXPECT_EQ(Set.find(B), -1);
  EXPECT_EQ(Set.size(), 1u);
}

TEST(WarpHashSet, DuplicateKeysShareSlotMinIdWins) {
  WarpHashSet Set(1, 64);
  uint64_t Key[1] = {42};
  int64_t S1 = Set.insert(Key, 7);
  int64_t S2 = Set.insert(Key, 3);
  int64_t S3 = Set.insert(Key, 9);
  EXPECT_EQ(S1, S2);
  EXPECT_EQ(S1, S3);
  EXPECT_EQ(Set.size(), 1u);
  EXPECT_TRUE(Set.isWinner(size_t(S1), 3));
  EXPECT_FALSE(Set.isWinner(size_t(S1), 7));
  EXPECT_FALSE(Set.isWinner(size_t(S1), 9));
}

TEST(WarpHashSet, ManyDistinctKeys) {
  WarpHashSet Set(1, 4096);
  for (uint32_t I = 0; I != 2000; ++I) {
    uint64_t Key[1] = {uint64_t(I) * 0x9e3779b97f4a7c15ULL + I};
    int64_t Slot = Set.insert(Key, I);
    ASSERT_GE(Slot, 0) << I;
    EXPECT_TRUE(Set.isWinner(size_t(Slot), I));
  }
  EXPECT_EQ(Set.size(), 2000u);
}

TEST(WarpHashSet, FillsUpAndReportsFull) {
  WarpHashSet Set(1, 16); // Rounded to 16 slots; full at ~90%.
  uint32_t Id = 0;
  bool SawFull = false;
  for (uint32_t I = 0; I != 64 && !SawFull; ++I) {
    uint64_t Key[1] = {uint64_t(I) + 1000000007ULL * I};
    SawFull = Set.insert(Key, Id++) < 0;
  }
  EXPECT_TRUE(SawFull);
  EXPECT_LE(Set.size(), Set.capacity());
}

TEST(WarpHashSet, ConcurrentInsertsDeterministicWinners) {
  // Many threads hammer the same small key space; winners must be the
  // minimum id per key regardless of interleaving.
  constexpr size_t KeySpace = 37;
  constexpr size_t Inserts = 8000;
  WarpHashSet Set(2, 1024);
  Device D(DeviceSpec{}, 4);
  std::vector<int64_t> Slots(Inserts);
  D.launch("hammer", Inserts, [&](size_t I) -> uint64_t {
    uint64_t Key[2] = {I % KeySpace, (I % KeySpace) * 31};
    Slots[I] = Set.insert(Key, uint32_t(I));
    return 1;
  });
  EXPECT_EQ(Set.size(), KeySpace);
  for (size_t I = 0; I != Inserts; ++I) {
    ASSERT_GE(Slots[I], 0);
    // Same key -> same slot.
    EXPECT_EQ(Slots[I], Slots[I % KeySpace]);
    // Winner is the first (minimum id) inserter: ids 0..KeySpace-1.
    EXPECT_EQ(Set.isWinner(size_t(Slots[I]), uint32_t(I)),
              I < KeySpace);
  }
}

TEST(WarpHashSet, MultiWordKeysCompareAllWords) {
  // WarpCore supported only <= 64-bit keys; this set must handle
  // 256-bit keys (Table 2's no9 regime).
  WarpHashSet Set(4, 64);
  uint64_t A[4] = {1, 2, 3, 4};
  uint64_t B[4] = {1, 2, 3, 5}; // Differs only in the last word.
  int64_t SlotA = Set.insert(A, 0);
  int64_t SlotB = Set.insert(B, 1);
  ASSERT_GE(SlotA, 0);
  ASSERT_GE(SlotB, 0);
  EXPECT_NE(SlotA, SlotB);
  EXPECT_EQ(Set.size(), 2u);
}

TEST(WarpHashSet, BytesUsedAccounts) {
  WarpHashSet Set(2, 100); // Rounds to 128 slots.
  EXPECT_EQ(Set.capacity(), 128u);
  EXPECT_GE(Set.bytesUsed(), 128 * 2 * sizeof(uint64_t));
}
