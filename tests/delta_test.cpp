//===- tests/delta_test.cpp - Spec-delta incremental resynthesis --------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// DESIGN.md Sec. 14 invariants:
///
///  * delta equivalence: grafting a superset edit onto a parked or
///    solved session yields a result bit-identical (status, regex,
///    cost, candidate/unique counters, per-shard row counts) to a cold
///    run of the edited query - across backends, shard counts, store
///    tiers and park points, including chained edits;
///  * the dup ledger survives snapshot round trips, so deltas work on
///    restored sessions;
///  * solved sessions take the satisfier-level fast path when the old
///    answer still holds, finishing without re-sweeping;
///  * ineligible edits (examples removed, options or alphabet differ,
///    borrowed sessions, error tolerance) decline and leave the old
///    session intact and resumable.
///
//===----------------------------------------------------------------------===//

#include "core/Snapshot.h"
#include "engine/BackendRegistry.h"
#include "engine/DeltaStage.h"
#include "engine/DupLedger.h"
#include "engine/Session.h"
#include "engine/Staging.h"
#include "regex/Matcher.h"
#include "regex/Regex.h"
#include "service/SynthService.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace paresy;
using namespace paresy::engine;

namespace {

const char *const BackendNames[] = {"cpu", "cpu-parallel", "gpusim"};
const unsigned ShardCounts[] = {1, 2, 3, 7};

Alphabet sigma01() { return Alphabet::of("01"); }

/// The paper's running example: strings starting with 10.
Spec fullSpec() {
  return Spec({"10", "101", "100", "1010", "1011", "1000", "1001"},
              {"", "0", "1", "00", "11", "010"});
}

/// A strict subset of fullSpec's examples - the "first draft" a user
/// refines toward fullSpec.
Spec baseSpec() {
  return Spec({"10", "101", "100", "1010"}, {"", "0", "1"});
}

/// Halfway point of the refinement (for chained deltas).
Spec midSpec() {
  return Spec({"10", "101", "100", "1010", "1011"}, {"", "0", "1", "00"});
}

SynthOptions opts(unsigned Shards, bool Compress, uint64_t MaxCost = 0) {
  SynthOptions O;
  O.Shards = Shards;
  O.CompressStore = Compress;
  O.MaxCost = MaxCost;
  return O;
}

SynthResult coldRun(const Spec &S, const SynthOptions &O,
                    const std::string &Backend) {
  std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), O);
  std::unique_ptr<engine::Backend> B = createBackend(Backend);
  return runStaged(*Q, *B);
}

/// The deterministic fields a delta run must reproduce bit-for-bit.
/// PairsVisited and MemoryBytes are excluded by design: the delta path
/// never re-evaluates the validated levels' split pairs (that is the
/// point), and its auxiliary structures are rebuilt, not replayed.
void expectDeltaEquivalent(const SynthResult &D, const SynthResult &Cold,
                           const std::string &What) {
  ASSERT_EQ(D.Status, Cold.Status) << What;
  EXPECT_EQ(D.Regex, Cold.Regex) << What;
  EXPECT_EQ(D.Cost, Cold.Cost) << What;
  EXPECT_EQ(D.Stats.CandidatesGenerated, Cold.Stats.CandidatesGenerated)
      << What;
  EXPECT_EQ(D.Stats.UniqueLanguages, Cold.Stats.UniqueLanguages) << What;
  EXPECT_EQ(D.Stats.CacheEntries, Cold.Stats.CacheEntries) << What;
  EXPECT_EQ(D.Stats.LastCompletedCost, Cold.Stats.LastCompletedCost)
      << What;
  EXPECT_EQ(D.Stats.ShardCount, Cold.Stats.ShardCount) << What;
  EXPECT_EQ(D.Stats.ShardRows, Cold.Stats.ShardRows) << What;
}

/// Runs \p OldS to its park/finish point under \p OldO, then grafts
/// \p NewS / \p NewO on top. Expects the graft to succeed.
std::unique_ptr<SearchSession> runAndGraft(const Spec &OldS,
                                           const SynthOptions &OldO,
                                           const Spec &NewS,
                                           const SynthOptions &NewO,
                                           const std::string &Backend,
                                           DeltaAttempt *Out = nullptr) {
  std::shared_ptr<const StagedQuery> QOld = stage(OldS, sigma01(), OldO);
  SearchSession Old(QOld, createBackend(Backend));
  Old.run();
  DeltaAttempt A = deltaResynthesize(Old, stage(NewS, sigma01(), NewO));
  EXPECT_TRUE(A.Session != nullptr) << A.DeclineReason;
  if (Out)
    *Out = {nullptr, A.DeclineReason, A.ColumnsAppended, A.LevelsSkipped,
            A.LevelsReplayed};
  return std::move(A.Session);
}

} // namespace

//===----------------------------------------------------------------------===//
// Delta equivalence across the full configuration matrix
//===----------------------------------------------------------------------===//

TEST(DeltaEquivalence, MatchesColdRunAcrossBackendsShardsAndTiers) {
  for (const char *Backend : BackendNames) {
    for (unsigned Shards : ShardCounts) {
      for (bool Compress : {false, true}) {
        std::string What = std::string(Backend) + "/shards=" +
                           std::to_string(Shards) +
                           (Compress ? "/compressed" : "/raw");
        SynthResult Cold = coldRun(fullSpec(), opts(Shards, Compress),
                                   Backend);

        // Park point 1: the old session exhausted a small cost budget.
        {
          std::unique_ptr<SearchSession> S =
              runAndGraft(baseSpec(), opts(Shards, Compress, 6),
                          fullSpec(), opts(Shards, Compress), Backend);
          ASSERT_TRUE(S) << What;
          expectDeltaEquivalent(S->run(), Cold, What + "/parked");
        }

        // Park point 2: the old session ran to its own answer.
        {
          std::unique_ptr<SearchSession> S =
              runAndGraft(baseSpec(), opts(Shards, Compress), fullSpec(),
                          opts(Shards, Compress), Backend);
          ASSERT_TRUE(S) << What;
          expectDeltaEquivalent(S->run(), Cold, What + "/solved");
        }
      }
    }
  }
}

TEST(DeltaEquivalence, ChainedRefinementMatchesColdRun) {
  for (const char *Backend : BackendNames) {
    for (unsigned Shards : {1u, 3u}) {
      std::string What =
          std::string(Backend) + "/shards=" + std::to_string(Shards);
      std::unique_ptr<SearchSession> S =
          runAndGraft(baseSpec(), opts(Shards, false, 6), midSpec(),
                      opts(Shards, false, 8), Backend);
      ASSERT_TRUE(S) << What;
      S->run();
      // Second edit grafts onto the *delta* session: its re-journaled
      // ledger must extend the validated prefix seamlessly.
      DeltaAttempt A =
          deltaResynthesize(*S, stage(fullSpec(), sigma01(),
                                      opts(Shards, false)));
      ASSERT_TRUE(A.Session != nullptr) << What << ": " << A.DeclineReason;
      expectDeltaEquivalent(A.Session->run(),
                            coldRun(fullSpec(), opts(Shards, false),
                                    Backend),
                            What + "/chained");
    }
  }
}

TEST(DeltaEquivalence, ShrunkCostBudgetClampsTheReplay) {
  // The edited query's budget is *smaller* than the levels the old
  // session completed: the graft must not materialize levels past it.
  std::unique_ptr<SearchSession> S =
      runAndGraft(baseSpec(), opts(2, false, 9), fullSpec(),
                  opts(2, false, 4), "cpu");
  ASSERT_TRUE(S);
  expectDeltaEquivalent(S->run(), coldRun(fullSpec(), opts(2, false, 4),
                                          "cpu"),
                        "clamped");
}

TEST(DeltaEquivalence, UniquenessCheckOffStillGrafts) {
  SynthOptions OldO = opts(1, false, 6), NewO = opts(1, false);
  OldO.UniquenessCheck = false;
  NewO.UniquenessCheck = false;
  std::unique_ptr<SearchSession> S =
      runAndGraft(baseSpec(), OldO, fullSpec(), NewO, "cpu");
  ASSERT_TRUE(S);
  expectDeltaEquivalent(S->run(), coldRun(fullSpec(), NewO, "cpu"),
                        "uniqueness-off");
}

TEST(DeltaEquivalence, WordAddingNoNewInfixesStillGrafts) {
  // "1010"'s infixes already contain "010": the universe is unchanged
  // (zero appended columns) but the masks differ - the degenerate edit
  // the geometry must handle.
  Spec Old({"10", "101", "100", "1010"}, {"", "0", "1"});
  Spec New = Old;
  New.Neg.push_back("010");
  DeltaAttempt Meta;
  std::unique_ptr<SearchSession> S = runAndGraft(
      Old, opts(1, false, 6), New, opts(1, false), "cpu", &Meta);
  ASSERT_TRUE(S);
  EXPECT_EQ(Meta.ColumnsAppended, 0u);
  expectDeltaEquivalent(S->run(), coldRun(New, opts(1, false), "cpu"),
                        "no-new-infixes");
}

//===----------------------------------------------------------------------===//
// Snapshot round trip
//===----------------------------------------------------------------------===//

TEST(DeltaSnapshot, LedgerSurvivesSaveRestoreAndGrafts) {
  std::shared_ptr<const StagedQuery> QOld =
      stage(baseSpec(), sigma01(), opts(2, false, 4));
  std::string Bytes;
  {
    SearchSession Old(QOld, createBackend("cpu"));
    Old.run();
    ASSERT_EQ(Old.state(), SessionState::Parked);
    SnapshotWriter W;
    ASSERT_TRUE(Old.save(W));
    Bytes = W.buffer();
  }
  std::string Error;
  std::unique_ptr<SearchSession> Restored =
      SearchSession::restore(Bytes, QOld, createBackend("cpu"), &Error);
  ASSERT_TRUE(Restored) << Error;
  DeltaAttempt A = deltaResynthesize(
      *Restored, stage(fullSpec(), sigma01(), opts(2, false)));
  ASSERT_TRUE(A.Session != nullptr) << A.DeclineReason;
  expectDeltaEquivalent(A.Session->run(),
                        coldRun(fullSpec(), opts(2, false), "cpu"),
                        "restored");
}

//===----------------------------------------------------------------------===//
// Solved-session fast path
//===----------------------------------------------------------------------===//

TEST(DeltaFastPath, CompatibleEditFinishesWithoutResweeping) {
  SynthResult Base = coldRun(baseSpec(), opts(1, false), "cpu");
  ASSERT_EQ(Base.Status, SynthStatus::Found);
  RegexManager M;
  ParseResult P = parseRegex(M, Base.Regex);
  ASSERT_NE(P.Re, nullptr) << P.Error;
  DerivativeMatcher Matcher(M);

  // Add an example the old answer already classifies correctly - a
  // rejected word as negative - choosing a word that is already a
  // universe column ("010" is an infix of "1010"). Zero appended
  // columns means no journaled dup can split, so every level
  // validates, the old satisfier still satisfies, and the graft must
  // finish on the spot without running a single level. (An edit that
  // *does* append columns may legitimately split a low-level dup pair
  // that collided on the old universe - e.g. (01)* vs (01)? - and
  // honestly resweep; the matrix test covers those.)
  ASSERT_FALSE(Matcher.matches(P.Re, "010"))
      << Base.Regex << " unexpectedly accepts 010";
  Spec New = baseSpec();
  New.Neg.push_back("010");

  std::shared_ptr<const StagedQuery> QOld =
      stage(baseSpec(), sigma01(), opts(1, false));
  SearchSession Old(QOld, createBackend("cpu"));
  Old.run();
  ASSERT_EQ(Old.state(), SessionState::Finished);
  DeltaAttempt A =
      deltaResynthesize(Old, stage(New, sigma01(), opts(1, false)));
  ASSERT_TRUE(A.Session != nullptr) << A.DeclineReason;
  EXPECT_EQ(A.ColumnsAppended, 0u);
  EXPECT_EQ(A.Session->state(), SessionState::Finished)
      << "fast path must not leave the session running";
  expectDeltaEquivalent(A.Session->result(),
                        coldRun(New, opts(1, false), "cpu"), "fast-path");
}

TEST(DeltaFastPath, BreakingEditResumesTheSweep) {
  SynthResult Base = coldRun(baseSpec(), opts(1, false), "cpu");
  ASSERT_EQ(Base.Status, SynthStatus::Found);
  RegexManager M;
  ParseResult P = parseRegex(M, Base.Regex);
  ASSERT_NE(P.Re, nullptr) << P.Error;
  DerivativeMatcher Matcher(M);

  // Add an *accepted* word as a negative example: the old answer is
  // dead and the sweep must continue past its level.
  Spec New = baseSpec();
  std::string Accepted;
  for (const std::string &W : {"1000", "1001", "10100", "1011"})
    if (Matcher.matches(P.Re, W)) {
      Accepted = W;
      break;
    }
  ASSERT_FALSE(Accepted.empty());
  New.Neg.push_back(Accepted);

  std::shared_ptr<const StagedQuery> QOld =
      stage(baseSpec(), sigma01(), opts(1, false));
  SearchSession Old(QOld, createBackend("cpu"));
  Old.run();
  DeltaAttempt A =
      deltaResynthesize(Old, stage(New, sigma01(), opts(1, false)));
  ASSERT_TRUE(A.Session != nullptr) << A.DeclineReason;
  expectDeltaEquivalent(A.Session->run(),
                        coldRun(New, opts(1, false), "cpu"),
                        "breaking-edit");
}

//===----------------------------------------------------------------------===//
// Declines leave the old session intact
//===----------------------------------------------------------------------===//

TEST(DeltaDecline, RemovedExampleDeclinesAndOldSessionStillResumes) {
  std::shared_ptr<const StagedQuery> QOld =
      stage(fullSpec(), sigma01(), opts(2, false, 6));
  SearchSession Old(QOld, createBackend("cpu"));
  Old.run();
  ASSERT_EQ(Old.state(), SessionState::Parked);

  DeltaAttempt A = deltaResynthesize(
      Old, stage(baseSpec(), sigma01(), opts(2, false)));
  EXPECT_EQ(A.Session, nullptr);
  EXPECT_FALSE(A.DeclineReason.empty());

  // The decline must not have damaged the parked state: an ordinary
  // budget extension still equals a cold run at the final budget.
  ASSERT_TRUE(Old.extendBudget(0, 0));
  expectDeltaEquivalent(Old.run(),
                        coldRun(fullSpec(), opts(2, false), "cpu"),
                        "post-decline-resume");
}

TEST(DeltaDecline, MismatchedSweepOptionsDecline) {
  std::shared_ptr<const StagedQuery> QOld =
      stage(baseSpec(), sigma01(), opts(2, false, 6));
  SearchSession Old(QOld, createBackend("cpu"));
  Old.run();
  // Different shard count: part of the lineage key.
  DeltaAttempt A = deltaResynthesize(
      Old, stage(fullSpec(), sigma01(), opts(3, false)));
  EXPECT_EQ(A.Session, nullptr);
  EXPECT_FALSE(A.DeclineReason.empty());
}

TEST(DeltaDecline, BorrowedSessionsDecline) {
  std::shared_ptr<const StagedQuery> Q =
      stage(baseSpec(), sigma01(), opts(1, false, 6));
  std::unique_ptr<engine::Backend> B = createBackend("cpu");
  SearchSession Old(*Q, *B); // Borrowing constructor: nothing to steal.
  Old.run();
  DeltaAttempt A = deltaResynthesize(
      Old, stage(fullSpec(), sigma01(), opts(1, false)));
  EXPECT_EQ(A.Session, nullptr);
}

TEST(DeltaDecline, ErrorTolerantEditsDecline) {
  std::shared_ptr<const StagedQuery> QOld =
      stage(baseSpec(), sigma01(), opts(1, false, 6));
  SearchSession Old(QOld, createBackend("cpu"));
  Old.run();
  SynthOptions Tolerant = opts(1, false);
  Tolerant.AllowedError = 0.2;
  DeltaAttempt A =
      deltaResynthesize(Old, stage(fullSpec(), sigma01(), Tolerant));
  EXPECT_EQ(A.Session, nullptr);
}

//===----------------------------------------------------------------------===//
// Service integration: delta-aware park lookup
//===----------------------------------------------------------------------===//

TEST(ServiceDelta, RefinementChainGraftsParkedDonors) {
  using paresy::service::ServiceStats;
  using paresy::service::SynthService;
  SynthService Service{{}};
  SynthOptions O = opts(1, false);

  // The first draft solves cold; being delta-capable, its solved
  // session is kept as a donor.
  EXPECT_EQ(Service.synthesize(baseSpec(), sigma01(), O).Status,
            SynthStatus::Found);
  ServiceStats St = Service.stats();
  EXPECT_EQ(St.SessionsParked, 1u);
  EXPECT_EQ(St.DeltaHits, 0u);

  // Each refinement grafts the previous round's store and still
  // equals a cold run of the edited spec, bit for bit.
  expectDeltaEquivalent(Service.synthesize(midSpec(), sigma01(), O),
                        coldRun(midSpec(), O, "cpu"), "service-mid");
  St = Service.stats();
  EXPECT_EQ(St.DeltaHits, 1u);
  EXPECT_GT(St.DeltaLevelsSkipped, 0u);

  expectDeltaEquivalent(Service.synthesize(fullSpec(), sigma01(), O),
                        coldRun(fullSpec(), O, "cpu"), "service-full");
  St = Service.stats();
  EXPECT_EQ(St.DeltaHits, 2u);
  // The exact-resume counter is delta-independent.
  EXPECT_EQ(St.SessionsResumed, 0u);
  EXPECT_NE(serviceStatsText(St).find("delta:"), std::string::npos);
}

TEST(ServiceDelta, TimeoutThroughTheDeltaPathIsNeverCached) {
  // Satellite regression: the delta path reaches the result cache
  // through the same publication point as a cold run, so its Timeout
  // (and Cancelled) results must stay uncacheable - replaying a
  // wall-clock failure from the cache would pin it forever.
  using paresy::service::SynthService;
  SynthService Service{{}};
  EXPECT_EQ(
      Service.synthesize(baseSpec(), sigma01(), opts(1, false)).Status,
      SynthStatus::Found);

  SynthOptions Hopeless = opts(1, false);
  Hopeless.TimeoutSeconds = 1e-9;
  EXPECT_EQ(
      Service.synthesize(fullSpec(), sigma01(), Hopeless).Status,
      SynthStatus::Timeout);
  EXPECT_EQ(Service.stats().DeltaHits, 1u);

  // The identical retry must re-run, not replay the grafted Timeout.
  EXPECT_EQ(
      Service.synthesize(fullSpec(), sigma01(), Hopeless).Status,
      SynthStatus::Timeout);
  EXPECT_EQ(Service.stats().Hits, 0u);
}

TEST(ServiceDelta, ShrunkSpecNeverGrafts) {
  // The reverse edit (examples removed) must not consume the donor.
  using paresy::service::SynthService;
  SynthService Service{{}};
  SynthOptions O = opts(1, false);
  EXPECT_EQ(Service.synthesize(fullSpec(), sigma01(), O).Status,
            SynthStatus::Found);
  expectDeltaEquivalent(Service.synthesize(baseSpec(), sigma01(), O),
                        coldRun(baseSpec(), O, "cpu"), "shrunk");
  EXPECT_EQ(Service.stats().DeltaHits, 0u);
  EXPECT_EQ(Service.stats().DeltaDeclined, 0u);
}

//===----------------------------------------------------------------------===//
// DupLedger unit behaviour
//===----------------------------------------------------------------------===//

TEST(DupLedger, PrefixTruncationKeepsExactlyTheValidatedLevels) {
  DupLedger L;
  Provenance P;
  P.Kind = CsOp::Star;
  P.Lhs = 3;
  L.beginLevel();
  L.commitLevel(1, 10, 8);
  L.beginLevel();
  L.record(P, 5);
  L.record(P, 6);
  L.commitLevel(2, 30, 20);
  L.beginLevel();
  L.record(P, 7);
  L.commitLevel(3, 70, 40);
  L.markBroken();
  ASSERT_TRUE(L.truncated());

  L.keepLevelPrefix(2);
  EXPECT_FALSE(L.truncated());
  ASSERT_EQ(L.levelCount(), 2u);
  EXPECT_EQ(L.level(1).Cost, 2u);
  EXPECT_EQ(L.level(1).DupEnd, 2u);
  // Journaling reopens past the kept prefix.
  L.beginLevel();
  L.record(P, 9);
  L.commitLevel(3, 70, 40);
  ASSERT_EQ(L.levelCount(), 3u);
  EXPECT_EQ(L.dup(L.level(2).DupBegin).WinnerRow, 9u);
}

TEST(DupLedger, CancelAndRollbackDiscardOpenRecords) {
  DupLedger L;
  Provenance P;
  P.Kind = CsOp::Concat;
  P.Lhs = 1;
  P.Rhs = 2;
  L.beginLevel();
  L.record(P, 4);
  L.cancelLevel();
  L.beginLevel();
  L.commitLevel(1, 5, 5);
  ASSERT_EQ(L.levelCount(), 1u);
  EXPECT_EQ(L.level(0).DupBegin, L.level(0).DupEnd);
}
