//===- tests/serve_test.cpp - Network serving stack ---------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The network-serving contract (DESIGN.md Sec. 12):
///
///   (a) the wire codec round-trips every frame type and rejects every
///       truncation, every single-byte corruption, and trailing
///       garbage - fail closed, like snapshot restore;
///   (b) admission control is deterministic: per-tenant token buckets
///       deny over-quota tenants without touching others, the bounded
///       queue sheds with a retryable Overloaded frame when full, and
///       jobs older than the queue-age deadline are shed at dequeue;
///   (c) weighted fair dequeue gives a weight-3 tenant ~3 slots per
///       weight-1 slot under contention, FIFO within ties;
///   (d) streamed anytime results are monotone: the best-so-far cost
///       never increases, the proven floor only rises;
///   (e) the Result frame is byte-identical (on every deterministic
///       field) to an in-process SynthService run of the same request
///       on the same backend - the wire adds transport, not answers;
///   (f) a mid-search disconnect *parks* the session; a reconnect
///       submitting the same query warm-starts it and returns the same
///       result a never-interrupted run produces.
///
/// Tests named External* run against a live server named by the
/// PARESY_SERVE_ADDR environment variable (HOST:PORT) and skip when it
/// is unset; CI's server-integration job provides one.
///
//===----------------------------------------------------------------------===//

#include "serve/Admission.h"
#include "serve/Client.h"
#include "serve/SynthServer.h"
#include "serve/Wire.h"

#include "engine/Backend.h"
#include "engine/BackendRegistry.h"
#include "engine/CpuBackend.h"
#include "regex/Matcher.h"
#include "service/SynthService.h"
#include "support/Socket.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <thread>

using namespace paresy;
using namespace paresy::serve;

namespace {

Spec introSpec() {
  return Spec({"10", "101", "100", "1010", "1011", "1000", "1001"},
              {"", "0", "1", "00", "11", "010"});
}

Spec example36Spec() {
  return Spec({"1", "011", "1011", "11011"}, {"", "10", "101", "0011"});
}

/// Polls \p P every few milliseconds for up to \p Seconds.
template <typename Pred> bool eventually(Pred P, double Seconds = 10.0) {
  WallTimer T;
  while (T.seconds() < Seconds) {
    if (P())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return P();
}

bool satisfies(const std::string &Regex, const Spec &S) {
  RegexManager M;
  ParseResult P = parseRegex(M, Regex);
  return P && satisfiesExamples(M, P.Re, S.Pos, S.Neg);
}

//===----------------------------------------------------------------------===//
// Test backend: holds every search at a gate so admission and
// disconnects can be staged deterministically.
//===----------------------------------------------------------------------===//

struct SearchGate {
  std::mutex M;
  std::condition_variable Cv;
  bool Open = false;

  void reset() {
    std::lock_guard<std::mutex> Lock(M);
    Open = false;
  }
  void open() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Open = true;
    }
    Cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Open; });
  }
};

SearchGate &gate() {
  static SearchGate G;
  return G;
}

/// Opens the gate on scope exit, so a failing ASSERT never leaves a
/// server worker blocked forever.
struct GateOpener {
  ~GateOpener() { gate().open(); }
};

class GatedCpuBackend : public engine::CpuBackend {
public:
  std::string_view name() const override { return "serve-gated-cpu"; }
  void prepare(engine::SearchContext &Ctx) override {
    gate().wait();
    engine::CpuBackend::prepare(Ctx);
  }
};

bool registerServeTestBackends() {
  static bool Done = [] {
    engine::registerBackend("serve-gated-cpu",
                            [](const engine::BackendConfig &) {
                              return std::make_unique<GatedCpuBackend>();
                            });
    return true;
  }();
  return Done;
}

//===----------------------------------------------------------------------===//
// Client-side frame pump
//===----------------------------------------------------------------------===//

struct Collected {
  std::vector<ProgressFrame> Progress;
  std::map<uint64_t, ResultFrame> Results;
  std::map<uint64_t, OverloadedFrame> Overloaded;
};

/// Reads frames until every id in \p Want has a Result or Overloaded
/// answer. False on disconnect or an unexpected frame type.
bool pump(ServeClient &C, const std::set<uint64_t> &Want, Collected &Out) {
  std::set<uint64_t> Seen;
  Frame F;
  while (Seen.size() < Want.size()) {
    if (!C.next(F))
      return false;
    if (F.Type == FrameType::Progress)
      Out.Progress.push_back(F.Progress);
    else if (F.Type == FrameType::Result) {
      Out.Results[F.Result.RequestId] = F.Result;
      if (Want.count(F.Result.RequestId))
        Seen.insert(F.Result.RequestId);
    } else if (F.Type == FrameType::Overloaded) {
      Out.Overloaded[F.Overloaded.RequestId] = F.Overloaded;
      if (Want.count(F.Overloaded.RequestId))
        Seen.insert(F.Overloaded.RequestId);
    } else
      return false;
  }
  return true;
}

/// The streamed-anytime monotonicity contract for one request's
/// progress frames: floor strictly rising, best cost never increasing,
/// every streamed candidate satisfying the spec.
void expectMonotoneProgress(const std::vector<ProgressFrame> &Frames,
                            uint64_t Id, const Spec &S) {
  uint64_t LastFloor = 0;
  uint64_t LastBest = ~uint64_t(0);
  bool First = true;
  for (const ProgressFrame &P : Frames) {
    if (P.RequestId != Id)
      continue;
    if (!First) {
      EXPECT_GT(P.CompletedCost, LastFloor);
      EXPECT_LE(P.BestCost, LastBest);
    }
    EXPECT_LE(P.CompletedCost, P.Horizon);
    EXPECT_TRUE(satisfies(P.BestRegex, S)) << P.BestRegex;
    LastFloor = P.CompletedCost;
    LastBest = P.BestCost;
    First = false;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Admission primitives (deterministic, clock-free)
//===----------------------------------------------------------------------===//

TEST(TokenBucket, RefillsAtRateUpToBurst) {
  TokenBucket B(1.0, 2.0);
  EXPECT_TRUE(B.tryAcquire(0));
  EXPECT_TRUE(B.tryAcquire(0));
  EXPECT_FALSE(B.tryAcquire(0));
  // Half a second refills half a token: still denied.
  EXPECT_FALSE(B.tryAcquire(0.5));
  // By 1.6s the balance crossed one token.
  EXPECT_TRUE(B.tryAcquire(1.6));
  EXPECT_FALSE(B.tryAcquire(1.6));
  // Time never runs backwards for the bucket.
  EXPECT_FALSE(B.tryAcquire(1.0));
  // Burst caps the balance no matter how long the tenant was idle.
  EXPECT_TRUE(B.tryAcquire(1000));
  EXPECT_TRUE(B.tryAcquire(1000));
  EXPECT_FALSE(B.tryAcquire(1000));
}

TEST(TokenBucket, ZeroRateIsAPureBurstAllowance) {
  TokenBucket B(0, 3.0);
  EXPECT_TRUE(B.tryAcquire(0));
  EXPECT_TRUE(B.tryAcquire(10));
  EXPECT_TRUE(B.tryAcquire(1e9));
  EXPECT_FALSE(B.tryAcquire(1e12));
  EXPECT_EQ(B.available(1e12), 0);
}

TEST(FairQueue, WeightThreeDrainsThreeToOneUnderContention) {
  FairQueue<int> Q;
  // 4 jobs per tenant, interleaved arrivals: A has weight 3, B has 1.
  for (int I = 0; I != 4; ++I) {
    Q.push("A", 3.0, 0, I);
    Q.push("B", 1.0, 0, 100 + I);
  }
  ASSERT_EQ(Q.size(), 8u);
  std::vector<std::string> Order;
  while (auto E = Q.pop())
    Order.push_back(E->Tenant);
  ASSERT_EQ(Order.size(), 8u);
  // The first two slots are A's (tags 1/3, 2/3 beat B's 1), and all
  // four of A's jobs drain within the first five slots: a 3:1 share.
  EXPECT_EQ(Order[0], "A");
  EXPECT_EQ(Order[1], "A");
  EXPECT_EQ(std::count(Order.begin(), Order.begin() + 5, "A"), 4);
  // B drains FIFO among itself.
  EXPECT_EQ(Order[5], "B");
  EXPECT_EQ(Order[6], "B");
  EXPECT_EQ(Order[7], "B");
}

TEST(FairQueue, IdleTenantCatchesUpInsteadOfBankingCredit) {
  FairQueue<int> Q;
  for (int I = 0; I != 4; ++I)
    Q.push("A", 1.0, 0, I);
  while (Q.pop())
    ;
  // C was idle the whole time; its first job must not jump a future
  // backlog (start tag catches up to the virtual time) but also must
  // not wait behind anything now.
  Q.push("C", 1.0, 0, 1);
  Q.push("A", 1.0, 0, 2);
  auto E = Q.pop();
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Tenant, "C");
}

TEST(FairQueue, HeadEnqueueTimeProbesTheOldestJob) {
  FairQueue<int> Q;
  EXPECT_EQ(Q.headEnqueuedAt(), 0);
  Q.push("A", 1.0, 7.5, 1);
  Q.push("A", 1.0, 9.5, 2);
  EXPECT_EQ(Q.headEnqueuedAt(), 7.5);
  Q.pop();
  EXPECT_EQ(Q.headEnqueuedAt(), 9.5);
}

TEST(TenantGate, CapsConcurrentSessionsPerTenantOnly) {
  TenantGate G(2, 0);
  EXPECT_EQ(G.tryAcquire("A"), TenantGate::Verdict::Admitted);
  EXPECT_EQ(G.tryAcquire("A"), TenantGate::Verdict::Admitted);
  EXPECT_EQ(G.tryAcquire("A"), TenantGate::Verdict::SessionCapped);
  // Another tenant's ledger is independent.
  EXPECT_EQ(G.tryAcquire("B"), TenantGate::Verdict::Admitted);
  EXPECT_EQ(G.active("A"), 2u);
  G.release("A");
  EXPECT_EQ(G.tryAcquire("A"), TenantGate::Verdict::Admitted);
  EXPECT_EQ(G.tryAcquire("A"), TenantGate::Verdict::SessionCapped);
  // Releasing a never-admitted tenant is a no-op, not a negative count.
  G.release("C");
  EXPECT_EQ(G.active("C"), 0u);
}

TEST(TenantGate, ParkBudgetSerializesButNeverLocksOut) {
  TenantGate G(0, 1);
  // At the budget: one session at a time - the resuming path stays
  // open - but no concurrent fan-out that could stuff the shared LRU.
  G.notePark("A");
  EXPECT_EQ(G.parked("A"), 1u);
  EXPECT_EQ(G.tryAcquire("A"), TenantGate::Verdict::Admitted);
  EXPECT_EQ(G.tryAcquire("A"), TenantGate::Verdict::ParkCapped);
  G.release("A");
  EXPECT_EQ(G.tryAcquire("A"), TenantGate::Verdict::Admitted);
  G.release("A");
  // A resume drains the charge; concurrency is restored.
  G.noteResume("A");
  EXPECT_EQ(G.parked("A"), 0u);
  EXPECT_EQ(G.tryAcquire("A"), TenantGate::Verdict::Admitted);
  EXPECT_EQ(G.tryAcquire("A"), TenantGate::Verdict::Admitted);
  // Other tenants never see A's charge.
  G.notePark("A");
  G.notePark("A");
  EXPECT_EQ(G.tryAcquire("B"), TenantGate::Verdict::Admitted);
  EXPECT_EQ(G.tryAcquire("B"), TenantGate::Verdict::Admitted);
  // The drain saturates at zero (LRU evictions the caller cannot see
  // may have emptied the charge already).
  G.noteResume("A");
  G.noteResume("A");
  G.noteResume("A");
  EXPECT_EQ(G.parked("A"), 0u);
}

//===----------------------------------------------------------------------===//
// Wire codec: round trips and fail-closed rejection
//===----------------------------------------------------------------------===//

TEST(WireCodec, RoundTripsEveryFrameType) {
  std::string Nasty("nasty\0\xff\x01+,#@", 12); // Embedded NUL included.

  HelloFrame H;
  H.Tenant = Nasty;
  H.Weight = 3.25;
  H.Capabilities = 0xdeadbeefull;
  Frame F;
  ASSERT_TRUE(decodeFrame(encodeFrame(H), F));
  ASSERT_EQ(F.Type, FrameType::Hello);
  EXPECT_EQ(F.Hello.Protocol, WireProtocolVersion);
  EXPECT_EQ(F.Hello.Tenant, Nasty);
  EXPECT_EQ(F.Hello.Weight, 3.25);
  EXPECT_EQ(F.Hello.Capabilities, 0xdeadbeefull);

  // A v1 Hello has no capability word on the wire; decoding one must
  // leave the field at its absent-value zero, not fail.
  H.Protocol = 1;
  ASSERT_TRUE(decodeFrame(encodeFrame(H), F));
  EXPECT_EQ(F.Hello.Protocol, 1u);
  EXPECT_EQ(F.Hello.Capabilities, 0u);

  HelloOkFrame HO;
  HO.Banner = "serving: backend cpu";
  HO.Capabilities = ServerCapabilities;
  ASSERT_TRUE(decodeFrame(encodeFrame(HO), F));
  ASSERT_EQ(F.Type, FrameType::HelloOk);
  EXPECT_EQ(F.HelloOk.Banner, HO.Banner);
  EXPECT_EQ(F.HelloOk.Capabilities, ServerCapabilities);

  SubmitFrame S;
  S.RequestId = 0x1122334455667788ull;
  S.Examples = Spec({"10", "", Nasty}, {"0", "11"});
  S.AlphabetChars = "01";
  S.Opts.Cost = CostFn(2, 3, 4, 5, 6);
  S.Opts.MaxCost = 500;
  S.Opts.MemoryLimitBytes = 123456789;
  S.Opts.TimeoutSeconds = 2.5;
  S.Opts.AllowedError = 0.125;
  S.Opts.Shards = 3;
  S.Opts.CompressStore = true;
  S.Opts.Portfolio = true;
  S.Opts.UseGuideTable = false;
  ASSERT_TRUE(decodeFrame(encodeFrame(S), F));
  ASSERT_EQ(F.Type, FrameType::Submit);
  EXPECT_EQ(F.Submit.RequestId, S.RequestId);
  EXPECT_EQ(F.Submit.Examples.Pos, S.Examples.Pos);
  EXPECT_EQ(F.Submit.Examples.Neg, S.Examples.Neg);
  EXPECT_EQ(F.Submit.AlphabetChars, "01");
  EXPECT_EQ(F.Submit.Opts.Cost.name(), S.Opts.Cost.name());
  EXPECT_EQ(F.Submit.Opts.MaxCost, 500u);
  EXPECT_EQ(F.Submit.Opts.MemoryLimitBytes, 123456789u);
  EXPECT_EQ(F.Submit.Opts.TimeoutSeconds, 2.5);
  EXPECT_EQ(F.Submit.Opts.AllowedError, 0.125);
  EXPECT_EQ(F.Submit.Opts.Shards, 3u);
  EXPECT_TRUE(F.Submit.Opts.CompressStore);
  EXPECT_TRUE(F.Submit.Opts.Portfolio);
  EXPECT_FALSE(F.Submit.Opts.UseGuideTable);
  // Host-resource options are not on the wire: decoding always yields
  // the defaults, whatever the sender's process had.
  EXPECT_TRUE(F.Submit.Opts.SpillDir.empty());

  CancelFrame C;
  C.RequestId = 42;
  ASSERT_TRUE(decodeFrame(encodeFrame(C), F));
  ASSERT_EQ(F.Type, FrameType::Cancel);
  EXPECT_EQ(F.Cancel.RequestId, 42u);

  ASSERT_TRUE(decodeFrame(encodeFrame(FrameType::StatsReq), F));
  EXPECT_EQ(F.Type, FrameType::StatsReq);
  ASSERT_TRUE(decodeFrame(encodeFrame(FrameType::Bye), F));
  EXPECT_EQ(F.Type, FrameType::Bye);

  ProgressFrame P;
  P.RequestId = 7;
  P.BestRegex = "10(1+0)*";
  P.BestCost = 99;
  P.CompletedCost = 5;
  P.Horizon = 31;
  P.Candidates = 123456;
  P.ConsumedSeconds = 0.75;
  ASSERT_TRUE(decodeFrame(encodeFrame(P), F));
  ASSERT_EQ(F.Type, FrameType::Progress);
  EXPECT_EQ(F.Progress.BestRegex, P.BestRegex);
  EXPECT_EQ(F.Progress.BestCost, 99u);
  EXPECT_EQ(F.Progress.CompletedCost, 5u);
  EXPECT_EQ(F.Progress.Horizon, 31u);
  EXPECT_EQ(F.Progress.Candidates, 123456u);
  EXPECT_EQ(F.Progress.ConsumedSeconds, 0.75);

  ResultFrame R;
  R.RequestId = 8;
  R.Status = uint8_t(SynthStatus::Found);
  R.Regex = "10(0+1)*";
  R.Cost = 10;
  R.Message = Nasty;
  R.Candidates = 999;
  R.Unique = 555;
  R.PrecomputeSeconds = 0.5;
  R.SearchSeconds = 1.5;
  R.LevelsRun = 9;
  R.Parked = 1;
  ASSERT_TRUE(decodeFrame(encodeFrame(R), F));
  ASSERT_EQ(F.Type, FrameType::Result);
  EXPECT_EQ(F.Result.Regex, R.Regex);
  EXPECT_EQ(F.Result.Cost, 10u);
  EXPECT_EQ(F.Result.Message, Nasty);
  EXPECT_EQ(F.Result.Candidates, 999u);
  EXPECT_EQ(F.Result.Unique, 555u);
  EXPECT_EQ(F.Result.LevelsRun, 9u);
  EXPECT_EQ(F.Result.Parked, 1);

  OverloadedFrame O;
  O.RequestId = 9;
  O.Reason = "queue full";
  ASSERT_TRUE(decodeFrame(encodeFrame(O), F));
  ASSERT_EQ(F.Type, FrameType::Overloaded);
  EXPECT_EQ(F.Overloaded.Reason, "queue full");
  EXPECT_EQ(F.Overloaded.Retryable, 1);

  ASSERT_TRUE(decodeFrame(encodeFrame(StatsReplyFrame{"stats\ntext\n"}), F));
  ASSERT_EQ(F.Type, FrameType::StatsReply);
  EXPECT_EQ(F.Stats.Text, "stats\ntext\n");

  ASSERT_TRUE(decodeFrame(encodeFrame(ErrorFrame{Nasty}), F));
  ASSERT_EQ(F.Type, FrameType::Error);
  EXPECT_EQ(F.Error.Message, Nasty);
}

TEST(WireCodec, RejectsEveryTruncationOfEveryFrame) {
  SubmitFrame S;
  S.RequestId = 3;
  S.Examples = introSpec();
  S.AlphabetChars = "01";
  std::vector<std::string> Payloads = {
      encodeFrame(HelloFrame{}), encodeFrame(S),
      encodeFrame(ProgressFrame{1, "10*", 5, 2, 9, 100, 0.5}),
      encodeFrame(StatsReplyFrame{"text"})};
  for (const std::string &Payload : Payloads) {
    Frame F;
    ASSERT_TRUE(decodeFrame(Payload, F));
    for (size_t Len = 0; Len != Payload.size(); ++Len)
      EXPECT_FALSE(decodeFrame(std::string_view(Payload.data(), Len), F))
          << "prefix of length " << Len << " of " << Payload.size();
  }
}

TEST(WireCodec, RejectsEverySingleByteCorruption) {
  SubmitFrame S;
  S.RequestId = 3;
  S.Examples = example36Spec();
  S.AlphabetChars = "01";
  std::string Payload = encodeFrame(S);
  Frame F;
  ASSERT_TRUE(decodeFrame(Payload, F));
  // The checksum trailer covers the whole payload: any one-byte flip -
  // envelope, fields, or the trailer itself - must reject.
  for (size_t I = 0; I != Payload.size(); ++I) {
    std::string Rotten = Payload;
    Rotten[I] = char(Rotten[I] ^ 0x2c);
    EXPECT_FALSE(decodeFrame(Rotten, F)) << "flip at byte " << I;
  }
}

TEST(WireCodec, RejectsTrailingGarbageAndOversizedClaims) {
  std::string Payload = encodeFrame(CancelFrame{11});
  Frame F;
  ASSERT_TRUE(decodeFrame(Payload, F));
  EXPECT_FALSE(decodeFrame(Payload + std::string(1, '\0'), F));
  EXPECT_FALSE(decodeFrame(Payload + "garbage", F));
  std::string Error;
  EXPECT_FALSE(decodeFrame(std::string(), F, &Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Frame transport over a real socket pair
//===----------------------------------------------------------------------===//

TEST(WireTransport, LengthPrefixedFramesCrossALoopbackSocket) {
  std::string Error;
  Listener L;
  ASSERT_TRUE(L.open("127.0.0.1", 0, &Error)) << Error;
  Socket Client = connectTo("127.0.0.1", L.port(), &Error);
  ASSERT_TRUE(Client.valid()) << Error;
  Socket Server = L.accept(2000);
  ASSERT_TRUE(Server.valid());

  std::string Out = encodeFrame(StatsReplyFrame{std::string(70000, 'x')});
  ASSERT_TRUE(writeFrame(Client, Out));
  std::string In;
  ASSERT_TRUE(readFrame(Server, In));
  EXPECT_EQ(In, Out);

  // A length prefix beyond MaxFrameBytes is rejected before any
  // allocation, and the connection is treated as broken.
  uint32_t Huge = MaxFrameBytes + 1;
  char Prefix[4] = {char(Huge & 0xff), char((Huge >> 8) & 0xff),
                    char((Huge >> 16) & 0xff), char((Huge >> 24) & 0xff)};
  ASSERT_TRUE(Client.sendAll(Prefix, 4));
  EXPECT_FALSE(readFrame(Server, In));
}

//===----------------------------------------------------------------------===//
// Server: handshake and protocol policing
//===----------------------------------------------------------------------===//

namespace {

ServerOptions basicServer(const std::string &Backend,
                          unsigned Workers = 1) {
  ServerOptions O;
  O.Workers = Workers;
  O.Service.Backend = Backend;
  return O;
}

} // namespace

TEST(ServeHandshake, HelloOkCarriesTheServiceBanner) {
  SynthServer Server(basicServer("cpu"));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  ServeClient C;
  ASSERT_TRUE(C.connect("127.0.0.1", Server.port(), "t1", 1.0, &Error))
      << Error;
  EXPECT_NE(C.banner().find("serving: backend cpu"), std::string::npos)
      << C.banner();
  // The banner reports the server pool's width, not the synchronous
  // service's zero workers.
  EXPECT_NE(C.banner().find("1 worker(s)"), std::string::npos) << C.banner();
  EXPECT_EQ(C.banner(), Server.banner());
  C.goodbye();
  Server.stop();
  EXPECT_GE(Server.stats().Connections, 1u);
}

TEST(ServeHandshake, RejectsProtocolMismatchAndNonHelloOpenings) {
  SynthServer Server(basicServer("cpu"));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  {
    Socket S = connectTo("127.0.0.1", Server.port(), &Error);
    ASSERT_TRUE(S.valid()) << Error;
    HelloFrame H;
    H.Protocol = WireProtocolVersion + 1;
    ASSERT_TRUE(writeFrame(S, encodeFrame(H)));
    std::string Payload;
    Frame F;
    ASSERT_TRUE(readFrame(S, Payload));
    ASSERT_TRUE(decodeFrame(Payload, F));
    ASSERT_EQ(F.Type, FrameType::Error);
    EXPECT_NE(F.Error.Message.find("protocol"), std::string::npos);
  }
  {
    Socket S = connectTo("127.0.0.1", Server.port(), &Error);
    ASSERT_TRUE(S.valid()) << Error;
    ASSERT_TRUE(writeFrame(S, encodeFrame(CancelFrame{1})));
    std::string Payload;
    Frame F;
    ASSERT_TRUE(readFrame(S, Payload));
    ASSERT_TRUE(decodeFrame(Payload, F));
    ASSERT_EQ(F.Type, FrameType::Error);
    EXPECT_NE(F.Error.Message.find("Hello"), std::string::npos);
  }
}

TEST(ServeHandshake, V2HandshakeAdvertisesDeltaResynthesis) {
  SynthServer Server(basicServer("cpu"));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  ServeClient C;
  ASSERT_TRUE(C.connect("127.0.0.1", Server.port(), "t1", 1.0, &Error))
      << Error;
  EXPECT_EQ(C.protocol(), WireProtocolVersion);
  EXPECT_TRUE(C.serverCapabilities() & CapDeltaResynthesis);
  C.goodbye();
}

TEST(ServeHandshake, V1ClientsStillRoundTrip) {
  // A client speaking the original protocol - no capability word in
  // its Hello - must still complete a whole search; the server answers
  // in v1 (so its HelloOk also has no capability word).
  SynthServer Server(basicServer("cpu"));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  Socket S = connectTo("127.0.0.1", Server.port(), &Error);
  ASSERT_TRUE(S.valid()) << Error;

  HelloFrame H;
  H.Protocol = 1;
  H.Tenant = "legacy";
  ASSERT_TRUE(writeFrame(S, encodeFrame(H)));
  std::string Payload;
  Frame F;
  ASSERT_TRUE(readFrame(S, Payload));
  ASSERT_TRUE(decodeFrame(Payload, F, &Error)) << Error;
  ASSERT_EQ(F.Type, FrameType::HelloOk);
  EXPECT_EQ(F.HelloOk.Protocol, 1u);
  EXPECT_EQ(F.HelloOk.Capabilities, 0u);

  SubmitFrame Sub;
  Sub.RequestId = 7;
  Sub.Examples = introSpec();
  Sub.AlphabetChars = "01";
  ASSERT_TRUE(writeFrame(S, encodeFrame(Sub)));
  for (;;) {
    ASSERT_TRUE(readFrame(S, Payload));
    ASSERT_TRUE(decodeFrame(Payload, F, &Error)) << Error;
    ASSERT_NE(F.Type, FrameType::Error) << F.Error.Message;
    if (F.Type != FrameType::Result)
      continue;
    EXPECT_EQ(F.Result.RequestId, 7u);
    EXPECT_EQ(SynthStatus(F.Result.Status), SynthStatus::Found);
    break;
  }
  ASSERT_TRUE(writeFrame(S, encodeFrame(FrameType::Bye)));
}

//===----------------------------------------------------------------------===//
// Server: streamed anytime results
//===----------------------------------------------------------------------===//

TEST(ServeStreaming, ProgressIsMonotoneAndCandidatesAlwaysSatisfy) {
  SynthServer Server(basicServer("cpu"));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  ServeClient C;
  ASSERT_TRUE(C.connect("127.0.0.1", Server.port(), "t1", 1.0, &Error))
      << Error;

  Spec S = introSpec();
  SynthOptions Opts;
  ASSERT_TRUE(C.submit(5, S, "01", Opts));
  Collected Got;
  ASSERT_TRUE(pump(C, {5}, Got));
  ASSERT_TRUE(Got.Results.count(5));
  const ResultFrame &R = Got.Results[5];
  EXPECT_EQ(SynthStatus(R.Status), SynthStatus::Found);
  EXPECT_TRUE(satisfies(R.Regex, S)) << R.Regex;

  // At least one completed level streamed before the answer, each one
  // monotone, and the initial best-so-far is the overfit union at its
  // documented cost bound.
  ASSERT_FALSE(Got.Progress.empty());
  expectMonotoneProgress(Got.Progress, 5, S);
  EXPECT_EQ(Got.Progress.front().BestRegex, overfitRegexText(S));
  EXPECT_EQ(Got.Progress.front().BestCost, overfitCostBound(S, Opts.Cost));
  // The final answer beats (or matches) everything that was streamed.
  EXPECT_LE(R.Cost, Got.Progress.back().BestCost);
  C.goodbye();
  Server.stop();
  EXPECT_GE(Server.stats().ProgressFrames, Got.Progress.size());
}

TEST(ServeStreaming, ResultMatchesInProcessServiceOnEveryBackend) {
  // The acceptance gate: what crosses the wire is byte-identical (on
  // every deterministic field) to an in-process SynthService answer
  // for the same request on the same backend.
  for (const char *Backend : {"cpu", "cpu-parallel", "gpusim", "hetero"}) {
    SCOPED_TRACE(Backend);
    SynthServer Server(basicServer(Backend));
    std::string Error;
    ASSERT_TRUE(Server.start(&Error)) << Error;
    ServeClient C;
    ASSERT_TRUE(C.connect("127.0.0.1", Server.port(), "t1", 1.0, &Error))
        << Error;
    Spec S = introSpec();
    SynthOptions Opts;
    ASSERT_TRUE(C.submit(1, S, "01", Opts));
    Collected Got;
    ASSERT_TRUE(pump(C, {1}, Got));
    ASSERT_TRUE(Got.Results.count(1));
    const ResultFrame &R = Got.Results[1];

    service::ServiceOptions SO;
    SO.Backend = Backend;
    service::SynthService Direct(SO);
    SynthResult Ref =
        Direct.synthesize(S, Alphabet::of("01"), Opts);

    EXPECT_EQ(SynthStatus(R.Status), Ref.Status);
    EXPECT_EQ(R.Regex, Ref.Regex);
    EXPECT_EQ(R.Cost, Ref.Cost);
    EXPECT_EQ(R.Message, Ref.Message);
    EXPECT_EQ(R.Candidates, Ref.Stats.CandidatesGenerated);
    EXPECT_EQ(R.Unique, Ref.Stats.UniqueLanguages);
    EXPECT_EQ(R.LevelsRun, Ref.Stats.LevelsRun);
    C.goodbye();
  }
}

//===----------------------------------------------------------------------===//
// Server: admission control
//===----------------------------------------------------------------------===//

TEST(ServeAdmission, QuotaDeniesTheNoisyTenantNotTheQuietOne) {
  ServerOptions O = basicServer("cpu");
  // A near-zero rate makes the bucket a pure burst allowance for the
  // duration of the test: 2 admissions per tenant, deterministically.
  O.TenantRatePerSec = 1e-9;
  O.TenantBurst = 2;
  SynthServer Server(std::move(O));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  ServeClient Noisy;
  ASSERT_TRUE(Noisy.connect("127.0.0.1", Server.port(), "noisy", 1.0,
                            &Error))
      << Error;
  SynthOptions Opts;
  ASSERT_TRUE(Noisy.submit(1, Spec({"0"}, {"1"}), "01", Opts));
  ASSERT_TRUE(Noisy.submit(2, Spec({"1"}, {"0"}), "01", Opts));
  ASSERT_TRUE(Noisy.submit(3, Spec({"00"}, {"1"}), "01", Opts));
  Collected Got;
  ASSERT_TRUE(pump(Noisy, {1, 2, 3}, Got));
  EXPECT_TRUE(Got.Results.count(1));
  EXPECT_TRUE(Got.Results.count(2));
  ASSERT_TRUE(Got.Overloaded.count(3));
  EXPECT_NE(Got.Overloaded[3].Reason.find("quota"), std::string::npos);
  EXPECT_EQ(Got.Overloaded[3].Retryable, 1);

  // The quiet tenant's bucket is untouched by the noisy one's burn.
  ServeClient Quiet;
  ASSERT_TRUE(Quiet.connect("127.0.0.1", Server.port(), "quiet", 1.0,
                            &Error))
      << Error;
  ASSERT_TRUE(Quiet.submit(4, Spec({"10"}, {"01"}), "01", Opts));
  Collected QuietGot;
  ASSERT_TRUE(pump(Quiet, {4}, QuietGot));
  EXPECT_TRUE(QuietGot.Results.count(4));

  EXPECT_EQ(Server.stats().QuotaDenied, 1u);
  // The per-tenant ledger (admitted requests only) shows the skew.
  std::string Stats = Server.statsText();
  EXPECT_NE(Stats.find("tenant: noisy, 2 request(s)"), std::string::npos)
      << Stats;
  EXPECT_NE(Stats.find("tenant: quiet, 1 request(s)"), std::string::npos)
      << Stats;
}

TEST(ServeAdmission, ShedsWithOverloadedWhenTheQueueIsFull) {
  registerServeTestBackends();
  gate().reset();
  GateOpener Guard;
  ServerOptions O = basicServer("serve-gated-cpu");
  O.MaxQueueDepth = 1;
  SynthServer Server(std::move(O));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  ServeClient C;
  ASSERT_TRUE(C.connect("127.0.0.1", Server.port(), "t1", 1.0, &Error))
      << Error;

  SynthOptions Opts;
  // Job 1 lands on the (only) worker and blocks at the gate.
  ASSERT_TRUE(C.submit(1, Spec({"0"}, {"1"}), "01", Opts));
  ASSERT_TRUE(eventually([&] {
    return Server.service().stats().Misses >= 1 &&
           Server.stats().QueueDepth == 0;
  }));
  // Job 2 fills the queue; job 3 is shed.
  ASSERT_TRUE(C.submit(2, Spec({"1"}, {"0"}), "01", Opts));
  ASSERT_TRUE(eventually([&] { return Server.stats().QueueDepth == 1; }));
  ASSERT_TRUE(C.submit(3, Spec({"00"}, {"1"}), "01", Opts));

  Collected Got;
  ASSERT_TRUE(pump(C, {3}, Got));
  ASSERT_TRUE(Got.Overloaded.count(3));
  EXPECT_NE(Got.Overloaded[3].Reason.find("queue"), std::string::npos);
  EXPECT_EQ(Server.stats().ShedQueueFull, 1u);

  // Open the gate: both admitted jobs complete normally.
  gate().open();
  ASSERT_TRUE(pump(C, {1, 2}, Got));
  EXPECT_TRUE(Got.Results.count(1));
  EXPECT_TRUE(Got.Results.count(2));
  EXPECT_EQ(Server.stats().PeakQueueDepth, 1u);
}

TEST(ServeAdmission, ShedsJobsOlderThanTheQueueAgeDeadline) {
  registerServeTestBackends();
  gate().reset();
  GateOpener Guard;
  ServerOptions O = basicServer("serve-gated-cpu");
  O.QueueAgeDeadlineSeconds = 0.25;
  SynthServer Server(std::move(O));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  ServeClient C;
  ASSERT_TRUE(C.connect("127.0.0.1", Server.port(), "t1", 1.0, &Error))
      << Error;

  SynthOptions Opts;
  // Job 1 is dequeued immediately (age ~0) and blocks at the gate.
  ASSERT_TRUE(C.submit(1, Spec({"0"}, {"1"}), "01", Opts));
  ASSERT_TRUE(eventually([&] {
    return Server.service().stats().Misses >= 1;
  }));
  // Job 2 queues behind it and ages past the deadline.
  ASSERT_TRUE(C.submit(2, Spec({"1"}, {"0"}), "01", Opts));
  ASSERT_TRUE(eventually([&] { return Server.stats().QueueDepth == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  gate().open();

  Collected Got;
  ASSERT_TRUE(pump(C, {1, 2}, Got));
  EXPECT_TRUE(Got.Results.count(1));
  ASSERT_TRUE(Got.Overloaded.count(2));
  EXPECT_NE(Got.Overloaded[2].Reason.find("deadline"), std::string::npos);
  EXPECT_EQ(Server.stats().ShedStale, 1u);
}

TEST(ServeAdmission, SessionCapShedsTheFanOutNotTheOtherTenant) {
  registerServeTestBackends();
  gate().reset();
  GateOpener Guard;
  ServerOptions O = basicServer("serve-gated-cpu");
  O.MaxSessionsPerTenant = 1;
  SynthServer Server(std::move(O));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  ServeClient C;
  ASSERT_TRUE(C.connect("127.0.0.1", Server.port(), "t1", 1.0, &Error))
      << Error;
  SynthOptions Opts;
  // Job 1 holds t1's only session slot at the gate; job 2 from the
  // same connection is read strictly after job 1 was admitted, so the
  // shed is deterministic.
  ASSERT_TRUE(C.submit(1, Spec({"0"}, {"1"}), "01", Opts));
  ASSERT_TRUE(C.submit(2, Spec({"1"}, {"0"}), "01", Opts));
  Collected Got;
  ASSERT_TRUE(pump(C, {2}, Got));
  ASSERT_TRUE(Got.Overloaded.count(2));
  EXPECT_NE(Got.Overloaded[2].Reason.find("session cap"), std::string::npos);
  EXPECT_EQ(Got.Overloaded[2].Retryable, 1);
  EXPECT_EQ(Server.stats().ShedSessionCap, 1u);

  // The cap is per tenant: t2's first session is admitted.
  ServeClient Other;
  ASSERT_TRUE(Other.connect("127.0.0.1", Server.port(), "t2", 1.0, &Error))
      << Error;
  ASSERT_TRUE(Other.submit(3, Spec({"00"}, {"1"}), "01", Opts));
  gate().open();
  ASSERT_TRUE(pump(C, {1}, Got));
  EXPECT_TRUE(Got.Results.count(1));
  Collected OtherGot;
  ASSERT_TRUE(pump(Other, {3}, OtherGot));
  EXPECT_TRUE(OtherGot.Results.count(3));

  // Completion released the slot: t1 submits again unimpeded.
  ASSERT_TRUE(C.submit(4, Spec({"10"}, {"01"}), "01", Opts));
  ASSERT_TRUE(pump(C, {4}, Got));
  EXPECT_TRUE(Got.Results.count(4));
  EXPECT_EQ(Server.stats().ShedSessionCap, 1u);
  std::string Stats = Server.statsText();
  EXPECT_NE(Stats.find("1 session-capped"), std::string::npos) << Stats;
}

TEST(ServeAdmission, ParkBudgetSerializesAndAResumeDrainsTheCharge) {
  registerServeTestBackends();
  gate().reset();
  GateOpener Guard;
  ServerOptions O = basicServer("serve-gated-cpu");
  O.MaxParkedPerTenant = 1;
  SynthServer Server(std::move(O));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  ServeClient C;
  ASSERT_TRUE(C.connect("127.0.0.1", Server.port(), "t1", 1.0, &Error))
      << Error;

  // Round 1: a budget too small to finish parks the session and
  // charges the tenant's park budget (now at its cap of 1).
  gate().open();
  Spec S = example36Spec();
  SynthOptions Small;
  Small.MaxCost = 4;
  ASSERT_TRUE(C.submit(1, S, "01", Small));
  Collected Got;
  ASSERT_TRUE(pump(C, {1}, Got));
  ASSERT_TRUE(Got.Results.count(1));
  EXPECT_EQ(SynthStatus(Got.Results[1].Status), SynthStatus::NotFound);
  EXPECT_EQ(Got.Results[1].Parked, 1);
  EXPECT_GE(Server.service().stats().SessionsParked, 1u);

  // Round 2: over the budget the tenant is serialized - one session
  // (held at the gate) is fine, a second concurrent one is shed.
  gate().reset();
  SynthOptions Opts;
  ASSERT_TRUE(C.submit(2, Spec({"0"}, {"1"}), "01", Opts));
  ASSERT_TRUE(C.submit(3, Spec({"1"}, {"0"}), "01", Opts));
  ASSERT_TRUE(pump(C, {3}, Got));
  ASSERT_TRUE(Got.Overloaded.count(3));
  EXPECT_NE(Got.Overloaded[3].Reason.find("park budget"), std::string::npos);
  EXPECT_EQ(Got.Overloaded[3].Retryable, 1);
  EXPECT_EQ(Server.stats().ShedParkBudget, 1u);
  gate().open();
  ASSERT_TRUE(pump(C, {2}, Got));
  EXPECT_TRUE(Got.Results.count(2));

  // Round 3: widening the budget resumes the parked session, which
  // drains the charge...
  SynthOptions Wide;
  ASSERT_TRUE(C.submit(4, S, "01", Wide));
  ASSERT_TRUE(pump(C, {4}, Got));
  ASSERT_TRUE(Got.Results.count(4));
  EXPECT_EQ(SynthStatus(Got.Results[4].Status), SynthStatus::Found);
  EXPECT_EQ(Server.service().stats().SessionsResumed, 1u);

  // ...so concurrent fan-out is admitted again.
  gate().reset();
  ASSERT_TRUE(C.submit(5, Spec({"00"}, {"1"}), "01", Opts));
  ASSERT_TRUE(C.submit(6, Spec({"11"}, {"0"}), "01", Opts));
  gate().open();
  ASSERT_TRUE(pump(C, {5, 6}, Got));
  EXPECT_TRUE(Got.Results.count(5));
  EXPECT_TRUE(Got.Results.count(6));
  EXPECT_EQ(Server.stats().ShedParkBudget, 1u);
  std::string Stats = Server.statsText();
  EXPECT_NE(Stats.find("1 park-capped"), std::string::npos) << Stats;
  C.goodbye();
}

//===----------------------------------------------------------------------===//
// Server: disconnect parks, reconnect resumes
//===----------------------------------------------------------------------===//

TEST(ServeResume, DisconnectParksThenReconnectWarmStartsBitIdentically) {
  registerServeTestBackends();
  gate().reset();
  GateOpener Guard;
  SynthServer Server(basicServer("serve-gated-cpu"));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  Spec S = introSpec();
  SynthOptions Opts;

  // Client A submits and vanishes mid-search (the search is held at
  // the gate, so the disconnect strictly precedes any level).
  {
    ServeClient A;
    ASSERT_TRUE(A.connect("127.0.0.1", Server.port(), "t1", 1.0, &Error))
        << Error;
    ASSERT_TRUE(A.submit(7, S, "01", Opts));
    ASSERT_TRUE(eventually([&] {
      return Server.service().stats().Misses >= 1;
    }));
    A.disconnect();
  }
  ASSERT_TRUE(eventually([&] { return Server.stats().Disconnects >= 1; }));
  gate().open();
  // With every waiter gone the search stops at its next poll point and
  // parks; the session survives the disconnect.
  ASSERT_TRUE(eventually([&] {
    return Server.service().stats().SessionsParked >= 1;
  }));

  // Client B reconnects with the same query and equal budgets: the
  // parked session warm-starts instead of recomputing.
  ServeClient B;
  ASSERT_TRUE(B.connect("127.0.0.1", Server.port(), "t1", 1.0, &Error))
      << Error;
  ASSERT_TRUE(B.submit(8, S, "01", Opts));
  Collected Got;
  ASSERT_TRUE(pump(B, {8}, Got));
  ASSERT_TRUE(Got.Results.count(8));
  const ResultFrame &R = Got.Results[8];
  EXPECT_EQ(SynthStatus(R.Status), SynthStatus::Found);
  EXPECT_EQ(Server.service().stats().SessionsResumed, 1u);
  expectMonotoneProgress(Got.Progress, 8, S);

  // Bit-identity with a never-interrupted in-process run of the same
  // request (the gated backend is a plain cpu backend past the gate).
  service::SynthService Direct{service::ServiceOptions{}};
  SynthResult Ref = Direct.synthesize(S, Alphabet::of("01"), Opts);
  EXPECT_EQ(R.Regex, Ref.Regex);
  EXPECT_EQ(R.Cost, Ref.Cost);
  EXPECT_EQ(R.Candidates, Ref.Stats.CandidatesGenerated);
  EXPECT_EQ(R.Unique, Ref.Stats.UniqueLanguages);
  B.goodbye();
}

TEST(ServeResume, CancelFrameParksTheSessionToo) {
  registerServeTestBackends();
  gate().reset();
  GateOpener Guard;
  SynthServer Server(basicServer("serve-gated-cpu"));
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  ServeClient C;
  ASSERT_TRUE(C.connect("127.0.0.1", Server.port(), "t1", 1.0, &Error))
      << Error;
  Spec S = example36Spec();
  SynthOptions Opts;
  ASSERT_TRUE(C.submit(1, S, "01", Opts));
  ASSERT_TRUE(eventually([&] {
    return Server.service().stats().Misses >= 1;
  }));
  ASSERT_TRUE(C.cancel(1));
  // Barrier: frames on one connection are handled in order, so a
  // StatsReply proves the Cancel was processed before the gate opens -
  // otherwise the release below could race the cancel and finish the
  // search as Found (which would park it as a delta donor, not as an
  // abandoned sweep, and request 2 would be a cache hit, not a resume).
  ASSERT_TRUE(C.requestStats());
  Frame Barrier;
  do {
    ASSERT_TRUE(C.next(Barrier, &Error)) << Error;
  } while (Barrier.Type != FrameType::StatsReply);
  gate().open();
  // Cancel abandons, never kills: the session parks for a retry.
  ASSERT_TRUE(eventually([&] {
    return Server.service().stats().SessionsParked >= 1;
  }));
  // The connection is still usable, and a resubmit resumes the parked
  // sweep and completes.
  ASSERT_TRUE(C.submit(2, S, "01", Opts));
  Collected Got;
  ASSERT_TRUE(pump(C, {2}, Got));
  ASSERT_TRUE(Got.Results.count(2));
  EXPECT_EQ(SynthStatus(Got.Results[2].Status), SynthStatus::Found);
  EXPECT_EQ(Server.service().stats().SessionsResumed, 1u);
  C.goodbye();
}

//===----------------------------------------------------------------------===//
// External server (PARESY_SERVE_ADDR): the CI integration lane
//===----------------------------------------------------------------------===//

namespace {

bool externalAddr(std::string &Host, uint16_t &Port) {
  const char *Addr = std::getenv("PARESY_SERVE_ADDR");
  if (!Addr || !*Addr)
    return false;
  std::string Text = Addr;
  size_t Colon = Text.rfind(':');
  if (Colon == std::string::npos)
    return false;
  Host = Text.substr(0, Colon);
  Port = uint16_t(std::atoi(Text.c_str() + Colon + 1));
  return Port != 0;
}

} // namespace

TEST(ExternalServe, SubmitStreamsMonotonicallyAndFinds) {
  std::string Host;
  uint16_t Port;
  if (!externalAddr(Host, Port))
    GTEST_SKIP() << "PARESY_SERVE_ADDR not set";
  std::string Error;
  ServeClient C;
  ASSERT_TRUE(C.connect(Host, Port, "ci-basic", 1.0, &Error)) << Error;
  EXPECT_NE(C.banner().find("serving:"), std::string::npos);
  Spec S = introSpec();
  SynthOptions Opts;
  ASSERT_TRUE(C.submit(1, S, "01", Opts));
  Collected Got;
  ASSERT_TRUE(pump(C, {1}, Got));
  ASSERT_TRUE(Got.Results.count(1));
  EXPECT_EQ(SynthStatus(Got.Results[1].Status), SynthStatus::Found);
  EXPECT_TRUE(satisfies(Got.Results[1].Regex, S));
  expectMonotoneProgress(Got.Progress, 1, S);
  // The stats endpoint answers with the shared service text.
  Frame F;
  ASSERT_TRUE(C.requestStats());
  ASSERT_TRUE(C.next(F, &Error)) << Error;
  ASSERT_EQ(F.Type, FrameType::StatsReply);
  EXPECT_NE(F.Stats.Text.find("service:"), std::string::npos);
  EXPECT_NE(F.Stats.Text.find("server:"), std::string::npos);
  C.goodbye();
}

TEST(ExternalServe, KillAndReconnectResumesABudgetParkedSession) {
  std::string Host;
  uint16_t Port;
  if (!externalAddr(Host, Port))
    GTEST_SKIP() << "PARESY_SERVE_ADDR not set";
  std::string Error;
  Spec S = example36Spec();

  // Round 1: a budget too small to finish. On a fresh server this
  // parks the session (Parked=1); on a reused server the NotFound may
  // come from the result cache instead.
  SynthOptions Small;
  Small.MaxCost = 4;
  uint8_t Parked;
  {
    ServeClient C1;
    ASSERT_TRUE(C1.connect(Host, Port, "ci-resume", 1.0, &Error)) << Error;
    ASSERT_TRUE(C1.submit(1, S, "01", Small));
    Collected Got;
    ASSERT_TRUE(pump(C1, {1}, Got));
    ASSERT_TRUE(Got.Results.count(1));
    EXPECT_EQ(SynthStatus(Got.Results[1].Status), SynthStatus::NotFound);
    Parked = Got.Results[1].Parked;
    C1.disconnect(); // The abrupt path, not a polite Bye.
  }

  // Round 2: reconnect and widen the budget; the parked sweep state
  // warm-starts and the search completes.
  ServeClient C2;
  ASSERT_TRUE(C2.connect(Host, Port, "ci-resume", 1.0, &Error)) << Error;
  SynthOptions Wide;
  ASSERT_TRUE(C2.submit(2, S, "01", Wide));
  Collected Got;
  ASSERT_TRUE(pump(C2, {2}, Got));
  ASSERT_TRUE(Got.Results.count(2));
  EXPECT_EQ(SynthStatus(Got.Results[2].Status), SynthStatus::Found);
  EXPECT_TRUE(satisfies(Got.Results[2].Regex, S));

  if (Parked) {
    // Fresh-server run: the resume must be visible in the stats.
    Frame F;
    ASSERT_TRUE(C2.requestStats());
    ASSERT_TRUE(C2.next(F, &Error)) << Error;
    ASSERT_EQ(F.Type, FrameType::StatsReply);
    size_t At = F.Stats.Text.find(" resumed");
    ASSERT_NE(At, std::string::npos) << F.Stats.Text;
    size_t Digits = F.Stats.Text.find_last_not_of("0123456789", At - 1);
    uint64_t Resumed = std::strtoull(
        F.Stats.Text.c_str() + Digits + 1, nullptr, 10);
    EXPECT_GE(Resumed, 1u) << F.Stats.Text;
  }
  C2.goodbye();
}
