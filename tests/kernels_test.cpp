//===- tests/kernels_test.cpp - Specialized CS kernel tests -------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the width-specialized kernel hot path of PR 3:
///
///  * the 1-word and 2-word concat/star specializations are
///    byte-identical to the generic fold on every input tried,
///  * the tag-byte fast path of CsHashSet and WarpHashSet never
///    confuses rows whose tags collide but whose bits differ,
///  * the search pipeline stays backend-equivalent when the language
///    cache pads rows to a stride wider than the CS (non-power-of-two
///    widths, i.e. unpadded universes).
///
//===----------------------------------------------------------------------===//

#include "benchgen/Generators.h"
#include "core/CsHashSet.h"
#include "core/LanguageCache.h"
#include "core/Synthesizer.h"
#include "engine/BackendRegistry.h"
#include "engine/Kernels.h"
#include "gpusim/WarpHashSet.h"
#include "lang/CharSeq.h"
#include "lang/CsKernels.h"
#include "lang/GuideTable.h"
#include "lang/Universe.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

using namespace paresy;

namespace {

/// Finds a deterministic Type 1 spec whose universe needs exactly
/// \p WantWords CS words (with power-of-two padding on).
std::optional<Spec> specForWords(size_t WantWords) {
  for (unsigned MaxLen = 2; MaxLen <= 10; ++MaxLen) {
    for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
      benchgen::GenParams Params;
      Params.MaxLen = MaxLen;
      Params.NumPos = 6;
      Params.NumNeg = 6;
      Params.Seed = Seed;
      benchgen::GeneratedBenchmark B;
      if (!benchgen::generate(benchgen::BenchType::Type1, Params, B,
                              nullptr))
        continue;
      if (Universe(B.Examples).csWords() == WantWords)
        return B.Examples;
    }
  }
  return std::nullopt;
}

/// A random CS whose padding bits (>= universe size) are zero, like
/// every CS the search constructs.
std::vector<uint64_t> randomCs(const Universe &U, Rng &R) {
  std::vector<uint64_t> Cs(U.csWords());
  for (uint64_t &W : Cs)
    W = R.next();
  for (size_t I = U.size(); I != U.csWords() * BitsPerWord; ++I)
    clearBit(Cs.data(), I);
  return Cs;
}

/// A random sparse CS (a handful of set bits): drives the dispatcher
/// onto the transposed sparse walk.
std::vector<uint64_t> randomSparseCs(const Universe &U, Rng &R) {
  std::vector<uint64_t> Cs(U.csWords(), 0);
  for (int I = 0; I != 3; ++I)
    setBit(Cs.data(), size_t(R.below(U.size())));
  return Cs;
}

/// Operand pairs covering every dispatch path: dense/dense (full
/// fold), sparse/dense and dense/sparse (each transposed side), and
/// sparse/sparse.
std::pair<std::vector<uint64_t>, std::vector<uint64_t>>
operandPair(const Universe &U, Rng &R, int Trial) {
  switch (Trial % 4) {
  case 0:
    return {randomCs(U, R), randomCs(U, R)};
  case 1:
    return {randomSparseCs(U, R), randomCs(U, R)};
  case 2:
    return {randomCs(U, R), randomSparseCs(U, R)};
  default:
    return {randomSparseCs(U, R), randomSparseCs(U, R)};
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Specialized vs generic parity
//===----------------------------------------------------------------------===//

class KernelParity : public ::testing::TestWithParam<size_t> {};

TEST_P(KernelParity, ConcatSpecializedMatchesGenericByteForByte) {
  std::optional<Spec> S = specForWords(GetParam());
  ASSERT_TRUE(S) << "no generated spec with " << GetParam()
                 << "-word CS";
  Universe U(*S);
  GuideTable GT(U);
  size_t Words = U.csWords();
  ASSERT_EQ(Words, GetParam());

  Rng R(7);
  for (int Trial = 0; Trial != 400; ++Trial) {
    auto [A, B] = operandPair(U, R, Trial);
    std::vector<uint64_t> Fast(Words, ~uint64_t(0));
    std::vector<uint64_t> Slow(Words, ~uint64_t(0));
    // The dispatcher picks the specialization; the generic fold is
    // called directly. Outputs must be byte-identical.
    cskernel::concatStaged(Fast.data(), A.data(), B.data(), GT,
                           U.size(), Words);
    cskernel::concatGeneric(Slow.data(), A.data(), B.data(),
                            GT.rowOffsets().data(),
                            cskernel::pairStream32(GT), U.size(),
                            Words);
    ASSERT_TRUE(equalWords(Fast.data(), Slow.data(), Words))
        << "trial " << Trial;
  }
}

TEST_P(KernelParity, StarSpecializedMatchesUnfusedFixpoint) {
  std::optional<Spec> S = specForWords(GetParam());
  ASSERT_TRUE(S);
  Universe U(*S);
  GuideTable GT(U);
  size_t Words = U.csWords();

  Rng R(11);
  std::vector<uint64_t> Cur(Words), Next(Words);
  for (int Trial = 0; Trial != 100; ++Trial) {
    std::vector<uint64_t> A =
        Trial % 2 ? randomSparseCs(U, R) : randomCs(U, R);
    std::vector<uint64_t> Fast(Words, ~uint64_t(0));
    cskernel::starStaged(Fast.data(), A.data(), GT, U.size(), Words,
                         U.epsilonIndex(), Cur.data(), Next.data());

    // Reference: the textbook fixpoint S = 1 + S.A over the generic
    // fold, with separate or/compare passes.
    std::vector<uint64_t> Ref(Words, 0), Tmp(Words);
    setBit(Ref.data(), U.epsilonIndex());
    for (;;) {
      cskernel::concatGeneric(Tmp.data(), Ref.data(), A.data(),
                              GT.rowOffsets().data(),
                              cskernel::pairStream32(GT), U.size(),
                              Words);
      orWords(Tmp.data(), Tmp.data(), Ref.data(), Words);
      if (equalWords(Tmp.data(), Ref.data(), Words))
        break;
      copyWords(Ref.data(), Tmp.data(), Words);
    }
    ASSERT_TRUE(equalWords(Fast.data(), Ref.data(), Words))
        << "trial " << Trial;
  }
}

TEST_P(KernelParity, EngineKernelAgreesWithSequentialAlgebra) {
  std::optional<Spec> S = specForWords(GetParam());
  ASSERT_TRUE(S);
  Universe U(*S);
  GuideTable GT(U);
  CsAlgebra Algebra(U, &GT);
  size_t Words = U.csWords();

  Rng R(23);
  for (int Trial = 0; Trial != 100; ++Trial) {
    auto [A, B] = operandPair(U, R, Trial);
    std::vector<uint64_t> FromKernel(Words), FromAlgebra(Words);
    engine::csConcat(FromKernel.data(), A.data(), B.data(), U, &GT);
    Algebra.concat(FromAlgebra.data(), A.data(), B.data());
    ASSERT_TRUE(
        equalWords(FromKernel.data(), FromAlgebra.data(), Words));
    engine::csStar(FromKernel.data(), A.data(), U, &GT);
    Algebra.star(FromAlgebra.data(), A.data());
    ASSERT_TRUE(
        equalWords(FromKernel.data(), FromAlgebra.data(), Words));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, KernelParity,
                         ::testing::Values(size_t(1), size_t(2),
                                           size_t(4)));

//===----------------------------------------------------------------------===//
// Tag-byte collision handling
//===----------------------------------------------------------------------===//

namespace {

/// Two distinct 2-word keys with identical tag bytes (and hence
/// identical fingerprints in both hash sets), found deterministically.
std::pair<std::vector<uint64_t>, std::vector<uint64_t>>
tagCollidingKeys(size_t Words) {
  Rng R(99);
  std::vector<uint64_t> First(Words);
  for (uint64_t &W : First)
    W = R.next();
  uint8_t WantTag = hashTagByte(hashWords(First.data(), Words));
  for (;;) {
    std::vector<uint64_t> Probe(Words);
    for (uint64_t &W : Probe)
      W = R.next();
    if (equalWords(Probe.data(), First.data(), Words))
      continue;
    if (hashTagByte(hashWords(Probe.data(), Words)) == WantTag)
      return {First, Probe};
  }
}

} // namespace

TEST(CsHashSetTags, EqualTagDifferentBitsAreDistinguished) {
  constexpr size_t Words = 2;
  auto [KeyA, KeyB] = tagCollidingKeys(Words);
  ASSERT_EQ(hashTagByte(hashWords(KeyA.data(), Words)),
            hashTagByte(hashWords(KeyB.data(), Words)));

  LanguageCache Cache(Words, 16);
  CsHashSet Set(Cache);
  uint32_t IdxA = Cache.append(KeyA.data(), Provenance{});
  Set.insert(KeyA.data(), IdxA);
  // The tag matches KeyA's slot; only the word comparison can (and
  // must) reject it.
  EXPECT_FALSE(Set.contains(KeyB.data()));
  uint32_t IdxB = Cache.append(KeyB.data(), Provenance{});
  Set.insert(KeyB.data(), IdxB);
  EXPECT_TRUE(Set.contains(KeyA.data()));
  EXPECT_TRUE(Set.contains(KeyB.data()));
  EXPECT_EQ(Set.size(), 2u);
}

TEST(CsHashSetTags, TagsSurviveGrowth) {
  constexpr size_t Words = 2;
  constexpr size_t Count = 3000; // Several rehash rounds from 64 slots.
  auto [KeyA, KeyB] = tagCollidingKeys(Words);

  LanguageCache Cache(Words, Count + 2);
  CsHashSet Set(Cache);
  Set.insert(KeyA.data(), Cache.append(KeyA.data(), Provenance{}));
  Set.insert(KeyB.data(), Cache.append(KeyB.data(), Provenance{}));

  Rng R(5);
  std::vector<std::vector<uint64_t>> Keys;
  while (Keys.size() < Count) {
    std::vector<uint64_t> Key(Words);
    for (uint64_t &W : Key)
      W = R.next();
    if (Set.contains(Key.data()))
      continue;
    Set.insert(Key.data(), Cache.append(Key.data(), Provenance{}));
    Keys.push_back(std::move(Key));
  }

  EXPECT_TRUE(Set.contains(KeyA.data()));
  EXPECT_TRUE(Set.contains(KeyB.data()));
  for (const auto &Key : Keys)
    ASSERT_TRUE(Set.contains(Key.data()));
}

TEST(WarpHashSetTags, EqualTagDifferentBitsAreDistinguished) {
  constexpr size_t Words = 2;
  auto [KeyA, KeyB] = tagCollidingKeys(Words);

  gpusim::WarpHashSet Set(Words, 64);
  int64_t SlotA = Set.insert(KeyA.data(), 1);
  ASSERT_GE(SlotA, 0);
  EXPECT_LT(Set.find(KeyB.data()), 0);
  int64_t SlotB = Set.insert(KeyB.data(), 2);
  ASSERT_GE(SlotB, 0);
  EXPECT_NE(SlotA, SlotB);
  EXPECT_EQ(Set.find(KeyA.data()), SlotA);
  EXPECT_EQ(Set.find(KeyB.data()), SlotB);
  EXPECT_TRUE(Set.isWinner(size_t(SlotA), 1));
  EXPECT_TRUE(Set.isWinner(size_t(SlotB), 2));
}

//===----------------------------------------------------------------------===//
// Cross-backend equivalence under the padded row stride
//===----------------------------------------------------------------------===//

TEST(RowStrideEquivalence, UnpaddedUniversesAgreeAcrossBackends) {
  // With power-of-two padding off, CS widths hit non-power-of-two
  // word counts, so the cache stores rows at a stride wider than the
  // CS. Every backend must still produce the sequential reference's
  // answer bit for bit.
  SynthOptions Opts;
  Opts.PadToPowerOfTwo = false;
  Opts.TimeoutSeconds = 0;

  std::vector<Spec> Corpus = {
      Spec({"10", "101", "100", "1010", "1011", "1000", "1001"},
           {"", "0", "1", "00", "11", "010"}),
      Spec({"1", "011", "1011", "11011"}, {"", "10", "101", "0011"}),
      Spec({"", "0", "00"}, {"1", "01", "10"}),
  };
  for (size_t I = 0; I != Corpus.size(); ++I) {
    SCOPED_TRACE("spec " + std::to_string(I));
    const Spec &S = Corpus[I];
    SynthResult Ref = synthesize(S, Alphabet::of("01"), Opts);
    ASSERT_EQ(Ref.Status, SynthStatus::Found);
    for (const std::string &Name : engine::backendNames()) {
      SCOPED_TRACE("backend " + Name);
      SynthResult R =
          engine::synthesizeWith(Name, S, Alphabet::of("01"), Opts);
      ASSERT_EQ(Ref.Status, R.Status);
      EXPECT_EQ(Ref.Regex, R.Regex);
      EXPECT_EQ(Ref.Cost, R.Cost);
      EXPECT_EQ(Ref.Stats.CandidatesGenerated,
                R.Stats.CandidatesGenerated);
      EXPECT_EQ(Ref.Stats.UniqueLanguages, R.Stats.UniqueLanguages);
    }
  }
}

TEST(RowStrideEquivalence, PaddedStrideWiderThanCsAgreesAcrossBackends) {
  // A spec whose *unpadded* universe needs exactly three CS words
  // (universe size in (128, 192]): rows then sit at a 4-word stride
  // with one padding word, the layout the small corpus above cannot
  // reach. The long example has 134 distinct infixes together with
  // the short ones.
  Spec S({"100101011101100011", "01", "10"}, {"", "00", "11", "0000"});
  Universe Probe(S, /*PadToPowerOfTwo=*/false);
  ASSERT_GT(Probe.size(), 2 * BitsPerWord);
  ASSERT_EQ(Probe.csWords(), 3u);
  ASSERT_NE(LanguageCache::strideForWords(3), 3u);
  std::optional<Spec> Found = S;

  SynthOptions Opts;
  Opts.PadToPowerOfTwo = false;
  Opts.TimeoutSeconds = 0;
  // Bound the sweep: equivalence of the (possibly NotFound) outcome is
  // the point, not solving a large instance in a unit test.
  Opts.MaxCost = 7;

  SynthResult Ref = synthesize(*Found, Alphabet::of("01"), Opts);
  for (const std::string &Name : engine::backendNames()) {
    SCOPED_TRACE("backend " + Name);
    SynthResult R =
        engine::synthesizeWith(Name, *Found, Alphabet::of("01"), Opts);
    ASSERT_EQ(Ref.Status, R.Status);
    EXPECT_EQ(Ref.Regex, R.Regex);
    EXPECT_EQ(Ref.Cost, R.Cost);
    EXPECT_EQ(Ref.Stats.CandidatesGenerated,
              R.Stats.CandidatesGenerated);
    EXPECT_EQ(Ref.Stats.UniqueLanguages, R.Stats.UniqueLanguages);
  }
}
