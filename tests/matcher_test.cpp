//===- tests/matcher_test.cpp - Contains-check engine tests -------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The derivative and NFA matchers are independent implementations of
/// the same semantics; the core of this file is the cross-check
/// property over random expressions and exhaustive short strings.
///
//===----------------------------------------------------------------------===//

#include "regex/Matcher.h"

#include "regex/Enumerator.h"
#include "regex/Regex.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace paresy;

namespace {

const Regex *parse(RegexManager &M, const char *Text) {
  ParseResult R = parseRegex(M, Text);
  EXPECT_TRUE(R) << Text << ": " << R.Error;
  return R.Re;
}

/// All strings over {0,1} of length <= MaxLen, shortlex order.
std::vector<std::string> allBinaryStrings(unsigned MaxLen) {
  std::vector<std::string> Out{""};
  size_t Begin = 0;
  for (unsigned Len = 1; Len <= MaxLen; ++Len) {
    size_t End = Out.size();
    for (size_t I = Begin; I != End; ++I) {
      Out.push_back(Out[I] + "0");
      Out.push_back(Out[I] + "1");
    }
    Begin = End;
  }
  return Out;
}

const Regex *randomRegex(RegexManager &M, Rng &R, int Budget) {
  if (Budget <= 1) {
    switch (R.below(4)) {
    case 0:
      return M.literal('0');
    case 1:
      return M.literal('1');
    case 2:
      return M.epsilon();
    default:
      return M.empty();
    }
  }
  switch (R.below(4)) {
  case 0:
    return M.question(randomRegex(M, R, Budget - 1));
  case 1:
    return M.star(randomRegex(M, R, Budget - 1));
  case 2: {
    int Left = 1 + int(R.below(uint64_t(Budget - 1)));
    return M.concat(randomRegex(M, R, Left),
                    randomRegex(M, R, Budget - Left));
  }
  default: {
    int Left = 1 + int(R.below(uint64_t(Budget - 1)));
    return M.alt(randomRegex(M, R, Left),
                 randomRegex(M, R, Budget - Left));
  }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Hand-written language checks (both engines)
//===----------------------------------------------------------------------===//

struct LanguageCase {
  const char *Pattern;
  std::vector<const char *> Accept;
  std::vector<const char *> Reject;
};

class MatcherLanguages : public ::testing::TestWithParam<LanguageCase> {};

TEST_P(MatcherLanguages, DerivativeEngine) {
  const LanguageCase &Case = GetParam();
  RegexManager M;
  const Regex *Re = parse(M, Case.Pattern);
  DerivativeMatcher D(M);
  for (const char *W : Case.Accept)
    EXPECT_TRUE(D.matches(Re, W)) << Case.Pattern << " on " << W;
  for (const char *W : Case.Reject)
    EXPECT_FALSE(D.matches(Re, W)) << Case.Pattern << " on " << W;
}

TEST_P(MatcherLanguages, NfaEngine) {
  const LanguageCase &Case = GetParam();
  RegexManager M;
  const Regex *Re = parse(M, Case.Pattern);
  NfaMatcher N(Re);
  for (const char *W : Case.Accept)
    EXPECT_TRUE(N.matches(W)) << Case.Pattern << " on " << W;
  for (const char *W : Case.Reject)
    EXPECT_FALSE(N.matches(W)) << Case.Pattern << " on " << W;
}

INSTANTIATE_TEST_SUITE_P(
    Core, MatcherLanguages,
    ::testing::Values(
        LanguageCase{"@", {}, {"", "0", "1", "01"}},
        LanguageCase{"#", {""}, {"0", "1", "00"}},
        LanguageCase{"0", {"0"}, {"", "1", "00", "01"}},
        LanguageCase{"10(0+1)*",
                     {"10", "101", "100", "1010", "1011", "1000", "1001"},
                     {"", "0", "1", "00", "11", "010"}},
        LanguageCase{"(0?1)*1",
                     {"1", "11", "011", "1011", "11011", "0111"},
                     {"", "10", "101", "0011", "0", "01"}},
        LanguageCase{"0*", {"", "0", "00", "000"}, {"1", "01", "10"}},
        LanguageCase{"0?", {"", "0"}, {"00", "1"}},
        LanguageCase{"(0+1)(0+1)",
                     {"00", "01", "10", "11"},
                     {"", "0", "000", "0101"}},
        LanguageCase{"0*1?0*",
                     {"", "0", "1", "010", "00100", "0001"},
                     {"11", "101", "110", "1001"}},
        LanguageCase{"(01)**", {"", "01", "0101"}, {"0", "10", "011"}},
        LanguageCase{"#*", {""}, {"0", "1"}},
        LanguageCase{"@*", {""}, {"0"}},
        LanguageCase{"@?", {""}, {"0"}},
        LanguageCase{"(0+10)*(11?)?(0+01)*",
                     {"0", "1", "11", "011", "110", "0110", "10101"},
                     {"111", "1111", "11011", "110110", "011011"}}));

//===----------------------------------------------------------------------===//
// Derivative-specific behaviour
//===----------------------------------------------------------------------===//

TEST(DerivativeMatcher, DeriveLiteral) {
  RegexManager M;
  DerivativeMatcher D(M);
  EXPECT_EQ(D.derive(M.literal('0'), '0'), M.epsilon());
  EXPECT_EQ(D.derive(M.literal('0'), '1'), M.empty());
  EXPECT_EQ(D.derive(M.empty(), '0'), M.empty());
  EXPECT_EQ(D.derive(M.epsilon(), '0'), M.empty());
}

TEST(DerivativeMatcher, DeriveStarUnrollsOnce) {
  RegexManager M;
  DerivativeMatcher D(M);
  const Regex *Star = M.star(M.literal('0'));
  // d0(0*) = 0* (after eps.r simplification).
  EXPECT_EQ(D.derive(Star, '0'), Star);
  EXPECT_EQ(D.derive(Star, '1'), M.empty());
}

TEST(DerivativeMatcher, UnionSimplificationKeepsTermsSmall) {
  RegexManager M;
  DerivativeMatcher D(M);
  const Regex *Re = parse(M, "(0+1)*(0+1)*(0+1)*");
  // Long input; without simplification the derivative terms explode.
  std::string W(200, '0');
  EXPECT_TRUE(D.matches(Re, W));
  EXPECT_LT(M.size(), 200u);
}

TEST(NfaMatcher, StateCountIsLinear) {
  RegexManager M;
  const Regex *Re = parse(M, "10(0+1)*");
  NfaMatcher N(Re);
  // Thompson construction: at most ~2 states per node + accept.
  EXPECT_LE(N.stateCount(), 2 * Re->nodeCount() + 1);
}

//===----------------------------------------------------------------------===//
// Cross-check property: both engines agree everywhere
//===----------------------------------------------------------------------===//

class MatcherCrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherCrossCheck, EnginesAgreeOnRandomExpressions) {
  RegexManager M;
  Rng R(GetParam());
  std::vector<std::string> Words = allBinaryStrings(6);
  for (int I = 0; I != 40; ++I) {
    const Regex *Re = randomRegex(M, R, 10);
    DerivativeMatcher D(M);
    NfaMatcher N(Re);
    for (const std::string &W : Words)
      ASSERT_EQ(D.matches(Re, W), N.matches(W))
          << toString(Re) << " on '" << W << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherCrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

//===----------------------------------------------------------------------===//
// satisfiesExamples
//===----------------------------------------------------------------------===//

TEST(SatisfiesExamples, AcceptsAllPositivesRejectsAllNegatives) {
  RegexManager M;
  const Regex *Re = parse(M, "10(0+1)*");
  EXPECT_TRUE(satisfiesExamples(
      M, Re, {"10", "101", "100", "1010", "1011", "1000", "1001"},
      {"", "0", "1", "00", "11", "010"}));
  EXPECT_FALSE(satisfiesExamples(M, Re, {"10", "0"}, {}));
  EXPECT_FALSE(satisfiesExamples(M, Re, {"10"}, {"100"}));
  EXPECT_TRUE(satisfiesExamples(M, Re, {}, {}));
}
