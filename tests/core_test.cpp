//===- tests/core_test.cpp - LanguageCache and CsHashSet unit tests -----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CsHashSet.h"
#include "core/LanguageCache.h"
#include "core/ShardedStore.h"
#include "core/Synthesizer.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <thread>
#include <vector>

using namespace paresy;

namespace {

Provenance literalProv(char Symbol) {
  Provenance P;
  P.Kind = CsOp::Literal;
  P.Symbol = Symbol;
  return P;
}

Provenance binaryProv(CsOp Kind, uint32_t Lhs, uint32_t Rhs) {
  Provenance P;
  P.Kind = Kind;
  P.Lhs = Lhs;
  P.Rhs = Rhs;
  return P;
}

Provenance unaryProv(CsOp Kind, uint32_t Lhs) {
  Provenance P;
  P.Kind = Kind;
  P.Lhs = Lhs;
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// LanguageCache
//===----------------------------------------------------------------------===//

TEST(LanguageCache, AppendAndRead) {
  LanguageCache Cache(2, 8);
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.capacity(), 8u);
  EXPECT_FALSE(Cache.full());
  uint64_t Row0[2] = {0xdead, 0xbeef};
  uint64_t Row1[2] = {1, 2};
  EXPECT_EQ(Cache.append(Row0, literalProv('0')), 0u);
  EXPECT_EQ(Cache.append(Row1, literalProv('1')), 1u);
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.cs(0)[0], 0xdeadu);
  EXPECT_EQ(Cache.cs(1)[1], 2u);
  EXPECT_EQ(Cache.provenance(1).Symbol, '1');
}

TEST(LanguageCache, FullAfterCapacityAppends) {
  LanguageCache Cache(1, 3);
  uint64_t Row[1] = {0};
  for (int I = 0; I != 3; ++I) {
    EXPECT_FALSE(Cache.full());
    Row[0] = uint64_t(I);
    Cache.append(Row, literalProv('0'));
  }
  EXPECT_TRUE(Cache.full());
}

TEST(LanguageCache, LevelsMapCostToRanges) {
  LanguageCache Cache(1, 16);
  uint64_t Row[1] = {7};
  Cache.append(Row, literalProv('0'));
  Cache.append(Row, literalProv('1'));
  Cache.setLevel(1, 0, 2);
  Cache.append(Row, unaryProv(CsOp::Star, 0));
  Cache.setLevel(2, 2, 3);
  EXPECT_EQ(Cache.level(1), (std::pair<uint32_t, uint32_t>(0, 2)));
  EXPECT_EQ(Cache.level(2), (std::pair<uint32_t, uint32_t>(2, 3)));
  // Unrecorded levels are empty.
  EXPECT_EQ(Cache.level(3).first, Cache.level(3).second);
  EXPECT_EQ(Cache.level(99).first, Cache.level(99).second);
}

TEST(LanguageCache, ReserveAndWriteRows) {
  LanguageCache Cache(2, 8);
  uint64_t Seed[2] = {1, 1};
  Cache.append(Seed, literalProv('0'));
  uint32_t Base = Cache.reserveRows(3);
  EXPECT_EQ(Base, 1u);
  EXPECT_EQ(Cache.size(), 4u);
  uint64_t Row[2] = {5, 6};
  Cache.writeRow(Base + 2, Row, literalProv('x'));
  EXPECT_EQ(Cache.cs(3)[0], 5u);
  EXPECT_EQ(Cache.provenance(3).Symbol, 'x');
  // Reserved-but-unwritten rows are zeroed.
  EXPECT_EQ(Cache.cs(1)[0], 0u);
}

TEST(LanguageCache, ConcurrentWritesToDistinctReservedRows) {
  // The contract the GPU-style compaction kernel depends on: after one
  // reserveRows(), distinct rows may be filled from any number of
  // threads concurrently. Interleave thread ownership (thread T owns
  // rows T, T+N, T+2N, ...) so neighbouring rows are always written by
  // different threads.
  constexpr size_t Words = 4;
  constexpr size_t Rows = 1024;
  constexpr unsigned NumThreads = 8;
  LanguageCache Cache(Words, Rows);
  ASSERT_EQ(Cache.reserveRows(Rows), 0u);
  ASSERT_EQ(Cache.size(), Rows);

  auto CellValue = [](size_t Row, size_t Word) {
    return uint64_t(Row) * 0x9e3779b97f4a7c15ULL + Word;
  };
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      uint64_t Row[Words];
      for (size_t I = T; I < Rows; I += NumThreads) {
        for (size_t W = 0; W != Words; ++W)
          Row[W] = CellValue(I, W);
        Provenance Prov;
        Prov.Kind = CsOp::Concat;
        Prov.Lhs = uint32_t(I);
        Prov.Rhs = uint32_t(I / 2);
        Cache.writeRow(I, Row, Prov);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  for (size_t I = 0; I != Rows; ++I) {
    for (size_t W = 0; W != Words; ++W)
      ASSERT_EQ(Cache.cs(I)[W], CellValue(I, W)) << I << "," << W;
    ASSERT_EQ(Cache.provenance(I).Lhs, uint32_t(I));
    ASSERT_EQ(Cache.provenance(I).Rhs, uint32_t(I / 2));
  }
}

TEST(ShardedStoreReconstruct, ReconstructionRebuildsExpressions) {
  ShardedStore Cache(1, 1, 16);
  uint64_t Row[1] = {0};
  Cache.append(Row, literalProv('0'));            // 0: "0"
  Cache.append(Row, literalProv('1'));            // 1: "1"
  Cache.append(Row, binaryProv(CsOp::Union, 0, 1)); // 2: 0+1
  Cache.append(Row, unaryProv(CsOp::Star, 2));      // 3: (0+1)*
  Cache.append(Row, binaryProv(CsOp::Concat, 1, 0)); // 4: 10
  Cache.append(Row, binaryProv(CsOp::Concat, 4, 3)); // 5: 10(0+1)*
  Cache.append(Row, unaryProv(CsOp::Question, 5));   // 6: (10(0+1)*)?

  RegexManager M;
  EXPECT_EQ(toString(Cache.reconstruct(0, M)), "0");
  EXPECT_EQ(toString(Cache.reconstruct(2, M)), "0+1");
  EXPECT_EQ(toString(Cache.reconstruct(3, M)), "(0+1)*");
  EXPECT_EQ(toString(Cache.reconstruct(5, M)), "10(0+1)*");
  EXPECT_EQ(toString(Cache.reconstruct(6, M)), "(10(0+1)*)?");
}

TEST(ShardedStoreReconstruct, ReconstructCandidateWithoutCaching) {
  // OnTheFly solutions are not cached; their operands are.
  ShardedStore Cache(1, 1, 4);
  uint64_t Row[1] = {0};
  Cache.append(Row, literalProv('a'));
  Cache.append(Row, literalProv('b'));
  RegexManager M;
  const Regex *Re =
      Cache.reconstructCandidate(binaryProv(CsOp::Concat, 0, 1), M);
  EXPECT_EQ(toString(Re), "ab");
}

TEST(ShardedStoreReconstruct, EpsilonAndEmptyProvenance) {
  ShardedStore Cache(1, 1, 4);
  uint64_t Row[1] = {0};
  Provenance Eps;
  Eps.Kind = CsOp::Epsilon;
  Provenance Empty;
  Empty.Kind = CsOp::Empty;
  Cache.append(Row, Eps);
  Cache.append(Row, Empty);
  RegexManager M;
  EXPECT_EQ(toString(Cache.reconstruct(0, M)), "#");
  EXPECT_EQ(toString(Cache.reconstruct(1, M)), "@");
}

TEST(LanguageCache, BytesUsedGrowsLinearly) {
  LanguageCache Cache(4, 16);
  uint64_t Row[4] = {0, 0, 0, 0};
  uint64_t Before = Cache.bytesUsed();
  Cache.append(Row, literalProv('0'));
  uint64_t After = Cache.bytesUsed();
  // Per row: the padded stride, the provenance, and the precomputed
  // row hash.
  EXPECT_EQ(After - Before,
            Cache.rowStride() * sizeof(uint64_t) + sizeof(Provenance) +
                sizeof(uint64_t));
}

TEST(LanguageCache, RowStrideIsCacheLineFriendly) {
  // Below a cache line the stride is the next power of two (so a row
  // never straddles a line); beyond, whole cache lines.
  EXPECT_EQ(LanguageCache::strideForWords(1), 1u);
  EXPECT_EQ(LanguageCache::strideForWords(2), 2u);
  EXPECT_EQ(LanguageCache::strideForWords(3), 4u);
  EXPECT_EQ(LanguageCache::strideForWords(4), 4u);
  EXPECT_EQ(LanguageCache::strideForWords(5), 8u);
  EXPECT_EQ(LanguageCache::strideForWords(8), 8u);
  EXPECT_EQ(LanguageCache::strideForWords(9), 16u);
  EXPECT_EQ(LanguageCache::strideForWords(17), 24u);
}

TEST(LanguageCache, PaddedRowsKeepTheirWords) {
  // A 3-word row is stored at a 4-word stride; reads must return
  // exactly the appended words and the padding must stay invisible.
  LanguageCache Cache(3, 8);
  ASSERT_EQ(Cache.rowStride(), 4u);
  uint64_t R0[3] = {0x0123456789abcdefULL, ~0ULL, 0x5555aaaa5555aaaaULL};
  uint64_t R1[3] = {7, 8, 9};
  Cache.append(R0, literalProv('0'));
  Cache.append(R1, literalProv('1'));
  EXPECT_TRUE(equalWords(Cache.cs(0), R0, 3));
  EXPECT_TRUE(equalWords(Cache.cs(1), R1, 3));
  // The base pointer is cache-line aligned, so strided rows never
  // straddle lines they do not need to.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Cache.cs(0)) % CacheLineBytes,
            0u);
  EXPECT_EQ(Cache.rowHash(0), hashWords(R0, 3));
  EXPECT_EQ(Cache.rowHash(1), hashWords(R1, 3));
}

//===----------------------------------------------------------------------===//
// CsHashSet
//===----------------------------------------------------------------------===//

TEST(CsHashSet, ContainsAfterInsert) {
  LanguageCache Cache(2, 64);
  CsHashSet Set(Cache);
  uint64_t A[2] = {1, 2};
  uint64_t B[2] = {2, 1};
  EXPECT_FALSE(Set.contains(A));
  uint32_t Idx = Cache.append(A, literalProv('0'));
  Set.insert(A, Idx);
  EXPECT_TRUE(Set.contains(A));
  EXPECT_FALSE(Set.contains(B));
  EXPECT_EQ(Set.size(), 1u);
}

TEST(CsHashSet, GrowsPastInitialCapacity) {
  LanguageCache Cache(1, 4096);
  CsHashSet Set(Cache);
  Rng R(13);
  std::set<uint64_t> Keys;
  std::vector<uint64_t> Inserted;
  while (Keys.size() < 1000) {
    uint64_t Key = R.next();
    if (!Keys.insert(Key).second)
      continue;
    uint64_t Row[1] = {Key};
    ASSERT_FALSE(Set.contains(Row));
    uint32_t Idx = Cache.append(Row, literalProv('0'));
    Set.insert(Row, Idx);
    Inserted.push_back(Key);
  }
  EXPECT_EQ(Set.size(), 1000u);
  for (uint64_t Key : Inserted) {
    uint64_t Row[1] = {Key};
    EXPECT_TRUE(Set.contains(Row)) << Key;
  }
  uint64_t Absent[1] = {0xfedcba9876543210ULL};
  if (!Keys.count(Absent[0]))
    EXPECT_FALSE(Set.contains(Absent));
}

TEST(CsHashSet, GrowthPastInitialSlotsWithMultiWordKeys) {
  // Drive the set far past its initial slot count (64 slots, 256
  // bytes) with multi-word keys, forcing several rehash rounds, and
  // verify every key - including keys sharing all but one word -
  // remains findable and distinguishable afterwards.
  constexpr size_t Words = 3;
  constexpr size_t Count = 2500;
  LanguageCache Cache(Words, Count);
  CsHashSet Set(Cache);
  uint64_t InitialSlotBytes = Set.bytesUsed();

  std::vector<std::array<uint64_t, Words>> Keys;
  Keys.reserve(Count);
  for (size_t I = 0; I != Count; ++I) {
    // Near-colliding keys: only the middle word varies for even I,
    // only the last for odd I.
    std::array<uint64_t, Words> Key = {0xabcdef0123456789ULL, 0, 0};
    if (I % 2 == 0)
      Key[1] = I;
    else {
      Key[1] = 0xffffffffffffffffULL;
      Key[2] = I;
    }
    Keys.push_back(Key);
    ASSERT_FALSE(Set.contains(Key.data())) << I;
    uint32_t Idx = Cache.append(Key.data(), literalProv('k'));
    Set.insert(Key.data(), Idx);
  }

  EXPECT_EQ(Set.size(), Count);
  // The slot table grew (it must hold Count entries under its maximum
  // load factor, far beyond the 64 initial slots).
  EXPECT_GT(Set.bytesUsed(), InitialSlotBytes * 8);
  for (size_t I = 0; I != Count; ++I)
    ASSERT_TRUE(Set.contains(Keys[I].data())) << I;

  uint64_t Absent[Words] = {0xabcdef0123456789ULL, 12345,
                            0xfedcba9876543210ULL};
  EXPECT_FALSE(Set.contains(Absent));
}

TEST(CsHashSet, MultiWordKeysCompareEveryWord) {
  LanguageCache Cache(4, 64);
  CsHashSet Set(Cache);
  uint64_t A[4] = {9, 9, 9, 1};
  uint64_t B[4] = {9, 9, 9, 2};
  Set.insert(A, Cache.append(A, literalProv('0')));
  EXPECT_TRUE(Set.contains(A));
  EXPECT_FALSE(Set.contains(B));
}

//===----------------------------------------------------------------------===//
// overfitCostBound and statusName
//===----------------------------------------------------------------------===//

TEST(OverfitBound, MatchesHandComputedCosts) {
  CostFn Uniform;
  // Single word "abc": 3 literals + 2 concats = 5.
  EXPECT_EQ(overfitCostBound(Spec({"abc"}, {}), Uniform), 5u);
  // Words "ab", "c": (2+1) + 1 + union = 5.
  EXPECT_EQ(overfitCostBound(Spec({"ab", "c"}, {}), Uniform), 5u);
  // Epsilon counts as one literal.
  EXPECT_EQ(overfitCostBound(Spec({"", "a"}, {}), Uniform), 3u);
  // Empty P costs one '@'.
  EXPECT_EQ(overfitCostBound(Spec({}, {"x"}), Uniform), 1u);
  // Non-uniform: "ab"+"c" under (2,1,1,3,4): (2+2+3) + 2 + 4 = 13.
  EXPECT_EQ(overfitCostBound(Spec({"ab", "c"}, {}), CostFn(2, 1, 1, 3, 4)),
            13u);
}

TEST(StatusName, AllStatusesNamed) {
  EXPECT_STREQ(statusName(SynthStatus::Found), "Found");
  EXPECT_STREQ(statusName(SynthStatus::NotFound), "NotFound");
  EXPECT_STREQ(statusName(SynthStatus::OutOfMemory), "OutOfMemory");
  EXPECT_STREQ(statusName(SynthStatus::Timeout), "Timeout");
  EXPECT_STREQ(statusName(SynthStatus::InvalidInput), "InvalidInput");
}

//===----------------------------------------------------------------------===//
// Star-free synthesis via the cost function (Sec. 5.1: "We can
// already search in the star-free fragment, by setting cost(*) high
// enough").
//===----------------------------------------------------------------------===//

TEST(Synthesizer, StarFreeFragmentViaDearStar) {
  Spec S({"0", "00", "000"}, {"", "1", "01", "10"});
  SynthOptions Free, StarFree;
  StarFree.Cost = CostFn(1, 1, 100, 1, 1);
  SynthResult A = synthesize(S, Alphabet::of("01"), Free);
  SynthResult B = synthesize(S, Alphabet::of("01"), StarFree);
  ASSERT_TRUE(A.found());
  ASSERT_TRUE(B.found());
  // Uniform costs choose 00*0-like star forms; the dear star forces
  // the enumerated union 0+00+000 (or an equivalent star-free form).
  EXPECT_NE(A.Regex.find('*'), std::string::npos);
  EXPECT_EQ(B.Regex.find('*'), std::string::npos) << B.Regex;
}
