//===- tests/dist_test.cpp - Distributed shard workers ------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// DESIGN.md Sec. 13 invariants:
///
///  * worker invariance: the "dist" backend (coordinator + N loopback
///    virtual workers - the same code path `--join` processes run) is
///    bit-identical to the in-process cpu reference on results, costs,
///    candidate counts, cache entries and per-shard occupancy, for
///    every worker count x shard count;
///  * migration: a session snapshotted at any level boundary restores
///    into a cluster of a *different* worker count and resumes to the
///    bit-identical answer (resharding is invisible to results);
///  * live elasticity: requestReshard() mid-sweep grows the cluster at
///    the next level boundary without changing any result, and the
///    migration is visible in the stats; park/snapshot/resume keep
///    working after a migration;
///  * fail-closed worker loss: a worker dying at any protocol point -
///    during prepare, mid-level, or at a boundary - surfaces as a
///    clean OutOfMemory with the worker named, never a hang and never
///    partial global ids (the broken cluster refuses to park).
///
//===----------------------------------------------------------------------===//

#include "dist/Channel.h"
#include "dist/Coordinator.h"
#include "dist/Worker.h"
#include "engine/BackendRegistry.h"
#include "engine/SearchDriver.h"
#include "engine/Session.h"

#include <gtest/gtest.h>

#include <thread>

using namespace paresy;
using namespace paresy::engine;

namespace {

const unsigned ShardCounts[] = {1, 2, 3, 7};
const unsigned WorkerCounts[] = {1, 2, 3};

Alphabet sigma01() { return Alphabet::of("01"); }

Spec introSpec() {
  return Spec({"10", "101", "100", "1010", "1011", "1000", "1001"},
              {"", "0", "1", "00", "11", "010"});
}

Spec example36Spec() {
  return Spec({"1", "011", "1011", "11011"}, {"", "10", "101", "0011"});
}

/// Every deterministic field a distributed run must reproduce from the
/// in-process reference. MemoryBytes is excluded: the uniqueness
/// structure differs between the sequential backend (CsHashSet) and
/// the batched pipeline (WarpHashSet), exactly as in the session suite.
void expectDistEquivalent(const SynthResult &Ref, const SynthResult &Got) {
  ASSERT_EQ(Ref.Status, Got.Status) << statusName(Got.Status)
                                    << " " << Got.Message;
  EXPECT_EQ(Ref.Regex, Got.Regex);
  EXPECT_EQ(Ref.Cost, Got.Cost);
  EXPECT_EQ(Ref.Stats.CandidatesGenerated, Got.Stats.CandidatesGenerated);
  EXPECT_EQ(Ref.Stats.UniqueLanguages, Got.Stats.UniqueLanguages);
  EXPECT_EQ(Ref.Stats.CacheEntries, Got.Stats.CacheEntries);
  EXPECT_EQ(Ref.Stats.UniverseSize, Got.Stats.UniverseSize);
  EXPECT_EQ(Ref.Stats.LastCompletedCost, Got.Stats.LastCompletedCost);
  EXPECT_EQ(Ref.Stats.ShardCount, Got.Stats.ShardCount);
  EXPECT_EQ(Ref.Stats.ShardRows, Got.Stats.ShardRows);
}

SynthResult coldCpu(const Spec &S, const SynthOptions &Opts) {
  std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Opts);
  std::unique_ptr<engine::Backend> B = createBackend("cpu");
  return runStaged(*Q, *B);
}

} // namespace

//===----------------------------------------------------------------------===//
// Worker invariance
//===----------------------------------------------------------------------===//

TEST(DistEquivalence, BitIdenticalToCpuAcrossWorkersAndShards) {
  for (const Spec &S : {introSpec(), example36Spec()}) {
    for (unsigned Shards : ShardCounts) {
      SynthOptions Opts;
      Opts.Shards = Shards;
      SynthResult Ref = coldCpu(S, Opts);
      std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Opts);
      for (unsigned W : WorkerCounts) {
        SCOPED_TRACE("shards=" + std::to_string(Shards) +
                     " workers=" + std::to_string(W));
        std::unique_ptr<dist::DistBackend> B = dist::DistBackend::inProcess(W);
        SynthResult Got = runStaged(*Q, *B);
        expectDistEquivalent(Ref, Got);
        EXPECT_EQ(Got.Stats.DistWorkers, W);
        EXPECT_EQ(Got.Stats.DistMigrations, 0u);
        // Cross-owner routing only exists with 2+ workers and 2+
        // shards; a single worker owns everything.
        if (W == 1)
          EXPECT_EQ(Got.Stats.DistExchangedRows, 0u);
      }
    }
  }
}

TEST(DistEquivalence, RegistryBackendIsTheLoopbackCluster) {
  // "dist" from the registry must be the same engine (Config.Workers
  // selects the cluster size; 0 falls back to the default of 2).
  SynthOptions Opts;
  Opts.Shards = 3;
  SynthResult Ref = coldCpu(introSpec(), Opts);
  std::shared_ptr<const StagedQuery> Q = stage(introSpec(), sigma01(), Opts);
  BackendConfig Config;
  Config.Workers = 3;
  std::unique_ptr<engine::Backend> B = createBackend("dist", Config);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->name(), "dist");
  SynthResult Got = runStaged(*Q, *B);
  expectDistEquivalent(Ref, Got);
  EXPECT_EQ(Got.Stats.DistWorkers, 3u);
}

//===----------------------------------------------------------------------===//
// Snapshot-migrate-resume (the migration property)
//===----------------------------------------------------------------------===//

TEST(DistMigration, SnapshotMigrateResumeBitIdenticalAtEveryBoundary) {
  Spec S = introSpec();
  for (unsigned Shards : ShardCounts) {
    SynthOptions Opts;
    Opts.Shards = Shards;
    SynthResult Cold = coldCpu(S, Opts);
    std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Opts);
    for (unsigned Src : WorkerCounts) {
      // Migrate to a different cluster size: 1->2, 2->3, 3->1 covers
      // both growth and shrink-through-snapshot.
      unsigned Dst = Src % 3 + 1;
      SCOPED_TRACE("shards=" + std::to_string(Shards) + " workers " +
                   std::to_string(Src) + "->" + std::to_string(Dst));
      for (unsigned Pause = 1;; ++Pause) {
        SearchSession Session(Q, dist::DistBackend::inProcess(Src));
        for (unsigned I = 0;
             I != Pause && Session.state() == SessionState::Running; ++I)
          Session.step();
        if (Session.state() != SessionState::Running) {
          // The sweep ended below this pause point: the stepped run
          // must equal the reference, and the boundary matrix is done.
          expectDistEquivalent(Cold, Session.result());
          break;
        }

        // Snapshot at this boundary, restore into a cluster of a
        // different size, resume to the end.
        SnapshotWriter W;
        ASSERT_TRUE(Session.canSave());
        ASSERT_TRUE(Session.save(W));
        std::string Error;
        std::unique_ptr<SearchSession> Restored = SearchSession::restore(
            W.buffer(), Q, dist::DistBackend::inProcess(Dst), &Error);
        ASSERT_NE(Restored, nullptr) << Error;
        expectDistEquivalent(Cold, Restored->run());
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Live elastic resharding
//===----------------------------------------------------------------------===//

TEST(DistMigration, LiveReshardMidSweepIsBitIdenticalAndAccounted) {
  Spec S = introSpec();
  for (unsigned Shards : {3u, 7u}) {
    for (unsigned Target : {2u, 3u}) {
      SCOPED_TRACE("shards=" + std::to_string(Shards) +
                   " reshard 1->" + std::to_string(Target));
      SynthOptions Opts;
      Opts.Shards = Shards;
      SynthResult Cold = coldCpu(S, Opts);
      std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Opts);

      std::unique_ptr<dist::DistBackend> B = dist::DistBackend::inProcess(1);
      dist::DistBackend *Cluster = B.get();
      SearchSession Session(Q, std::move(B));
      Session.step();
      Session.step();
      ASSERT_EQ(Session.state(), SessionState::Running);
      EXPECT_EQ(Cluster->workerCount(), 1u);

      // Grow at the next level boundary; the sweep continues 1->N.
      Cluster->requestReshard(Target);
      SynthResult Got = Session.run();
      expectDistEquivalent(Cold, Got);
      EXPECT_EQ(Cluster->workerCount(), Target);
      EXPECT_EQ(Got.Stats.DistWorkers, Target);
      EXPECT_EQ(Got.Stats.DistMigrations, 1u);
      EXPECT_GE(Got.Stats.DistMigrationSeconds, 0.0);
    }
  }
}

TEST(DistMigration, SnapshotAfterALiveReshardStillResumes) {
  // Park/checkpoint must keep working across a migration: reshard
  // mid-sweep, snapshot at the next boundary, restore, resume.
  Spec S = introSpec();
  SynthOptions Opts;
  Opts.Shards = 3;
  SynthResult Cold = coldCpu(S, Opts);
  std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Opts);

  std::unique_ptr<dist::DistBackend> B = dist::DistBackend::inProcess(1);
  dist::DistBackend *Cluster = B.get();
  SearchSession Session(Q, std::move(B));
  Session.step();
  ASSERT_EQ(Session.state(), SessionState::Running);
  Cluster->requestReshard(2);
  Session.step(); // The boundary that performs the migration.
  ASSERT_EQ(Session.state(), SessionState::Running);
  EXPECT_EQ(Cluster->workerCount(), 2u);

  SnapshotWriter W;
  ASSERT_TRUE(Session.canSave());
  ASSERT_TRUE(Session.save(W));
  std::string Error;
  std::unique_ptr<SearchSession> Restored = SearchSession::restore(
      W.buffer(), Q, dist::DistBackend::inProcess(3), &Error);
  ASSERT_NE(Restored, nullptr) << Error;
  expectDistEquivalent(Cold, Restored->run());

  // The live original (post-migration) reaches the same answer.
  expectDistEquivalent(Cold, Session.run());
}

//===----------------------------------------------------------------------===//
// Fail-closed worker loss
//===----------------------------------------------------------------------===//

namespace {

/// Forwards to a real loopback worker but severs the link after a
/// fixed number of coordinator sends: a deterministic worker death at
/// any chosen protocol point (during prepare, mid-level, boundary).
class DropAfter : public dist::ShardChannel {
public:
  DropAfter(std::unique_ptr<dist::ShardChannel> Inner, unsigned Limit)
      : Inner(std::move(Inner)), Limit(Limit) {}

  bool send(std::string_view Bytes) override {
    if (Sent >= Limit) {
      Inner->close();
      return false;
    }
    ++Sent;
    return Inner->send(Bytes);
  }
  bool recv(std::string &Bytes) override { return Inner->recv(Bytes); }
  void close() override { Inner->close(); }

private:
  std::unique_ptr<dist::ShardChannel> Inner;
  unsigned Limit;
  unsigned Sent = 0;
};

} // namespace

TEST(DistFailure, KilledWorkerFailsClosedAtEveryProtocolPoint) {
  Spec S = introSpec();
  SynthOptions Opts;
  Opts.Shards = 3;
  std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Opts);

  // Limits chosen to land in prepare (Init is send #1, StoreSync #2),
  // in the first level's batch traffic, and deeper into the sweep.
  for (unsigned Limit : {0u, 1u, 2u, 4u, 9u}) {
    SCOPED_TRACE("sends before death: " + std::to_string(Limit));
    std::vector<std::unique_ptr<dist::ShardChannel>> Ends;
    std::vector<std::thread> Threads;
    for (unsigned W = 0; W != 2; ++W) {
      dist::ChannelPair Pair = dist::makeLoopbackPair();
      Threads.emplace_back(
          [Ch = std::move(Pair.B)]() mutable { dist::runWorker(*Ch); });
      if (W == 1)
        Ends.push_back(
            std::make_unique<DropAfter>(std::move(Pair.A), Limit));
      else
        Ends.push_back(std::move(Pair.A));
    }
    {
      std::unique_ptr<dist::DistBackend> B =
          dist::DistBackend::overChannels(std::move(Ends));
      dist::DistBackend *Cluster = B.get();
      SearchSession Session(Q, std::move(B));
      // Must return (fail-closed, no hang), with a clean error naming
      // the lost worker and no partial level published.
      SynthResult R = Session.run();
      EXPECT_EQ(R.Status, SynthStatus::OutOfMemory) << statusName(R.Status);
      EXPECT_NE(R.Message.find("worker"), std::string::npos) << R.Message;
      EXPECT_TRUE(Cluster->broken());
      // A broken cluster refuses to park or snapshot: a resumed run
      // could no longer be bit-identical.
      EXPECT_FALSE(Session.canSave());
    }
    // The backend's destruction releases both workers (Shutdown on the
    // live link, close on the severed one): joins cannot hang.
    for (std::thread &T : Threads)
      T.join();
  }
}

TEST(DistFailure, WorkerLossAfterACompletedLevelKeepsTheFloor) {
  // Death at a level boundary: everything up to the last completed
  // level stays reported (LastCompletedCost is the proven floor), and
  // the failure is still clean.
  Spec S = introSpec();
  SynthOptions Opts;
  Opts.Shards = 2;
  std::shared_ptr<const StagedQuery> Q = stage(S, sigma01(), Opts);

  std::vector<std::unique_ptr<dist::ShardChannel>> Ends;
  std::vector<std::thread> Threads;
  dist::ShardChannel *Victim = nullptr;
  for (unsigned W = 0; W != 2; ++W) {
    dist::ChannelPair Pair = dist::makeLoopbackPair();
    Threads.emplace_back(
        [Ch = std::move(Pair.B)]() mutable { dist::runWorker(*Ch); });
    if (W == 1)
      Victim = Pair.A.get();
    Ends.push_back(std::move(Pair.A));
  }
  {
    SearchSession Session(Q, dist::DistBackend::overChannels(std::move(Ends)));
    Session.step();
    Session.step();
    ASSERT_EQ(Session.state(), SessionState::Running);
    uint64_t Boundary = Session.nextCost();

    Victim->close(); // SIGKILL analogue: the link just dies.
    SynthResult R = Session.run();
    EXPECT_EQ(R.Status, SynthStatus::OutOfMemory) << statusName(R.Status);
    EXPECT_NE(R.Message.find("worker"), std::string::npos) << R.Message;
    // No partial global ids: the proven floor is exactly the boundary
    // the sweep stopped at - every level below it completed before the
    // loss, none after it was published.
    EXPECT_GT(R.Stats.LastCompletedCost, 0u);
    EXPECT_LT(R.Stats.LastCompletedCost, Boundary);
    EXPECT_GT(R.Stats.CacheEntries, 0u);
  }
  for (std::thread &T : Threads)
    T.join();
}
